//! Hashed subword embeddings standing in for pre-trained Web Table
//! Embeddings (Günther et al. 2021).
//!
//! A token's vector is
//!
//! ```text
//! v(t) = normalize( g(h(t)) + (β/|G|) · Σ_{n∈G} g(h(n)) )
//! ```
//!
//! where `G` is the set of character n-grams of `t`, `h` the stable 64-bit
//! hash, and `g(seed)` a unit-variance Gaussian vector streamed from a
//! SplitMix64 generator seeded with the hash (mixed with the model seed).
//! The whole-token term dominates — distinct values stay distinguishable —
//! while the n-gram term gives partial similarity to near-miss strings
//! (typos, plural/singular, shared brand stems), which is the property the
//! paper's "semantic" join-ability relies on across formatting variants.
//!
//! Everything is deterministic: no training, no files, identical vectors in
//! every process. A bounded token→vector cache makes repeated tokens (the
//! common case in categorical columns) nearly free.

use parking_lot::RwLock;
use wg_util::hash::combine64;
use wg_util::kernel;
use wg_util::rng::Rng64;
use wg_util::{FxHashMap, SplitMix64};

use crate::model::EmbeddingModel;
use crate::tokenizer::{char_ngrams, Token};
use crate::vector::Vector;

/// Configuration for [`WebTableModel`].
#[derive(Debug, Clone, Copy)]
pub struct WebTableConfig {
    /// Embedding dimension (the published Web Table Embeddings are 150-d;
    /// we default to 128 for alignment-friendly arithmetic).
    pub dim: usize,
    /// Model seed: two models with different seeds inhabit unrelated spaces.
    pub seed: u64,
    /// Smallest character n-gram.
    pub min_ngram: usize,
    /// Largest character n-gram.
    pub max_ngram: usize,
    /// Relative weight of the summed n-gram term against the whole-token
    /// term. 0 disables subword information entirely.
    pub subword_weight: f32,
    /// Cache capacity in tokens; beyond this, vectors are recomputed on the
    /// fly rather than evicting (simple and allocation-free).
    pub cache_capacity: usize,
}

impl Default for WebTableConfig {
    fn default() -> Self {
        Self {
            dim: 128,
            seed: 0x5747_4154_4531_3238, // "WGATE128"
            min_ngram: 3,
            max_ngram: 4,
            subword_weight: 0.6,
            cache_capacity: 1 << 20,
        }
    }
}

/// The deterministic hashed-subword embedding model.
pub struct WebTableModel {
    config: WebTableConfig,
    cache: RwLock<FxHashMap<Token, Vector>>,
}

impl WebTableModel {
    /// Build a model with the given configuration.
    pub fn new(config: WebTableConfig) -> Self {
        assert!(config.dim > 0, "dimension must be positive");
        assert!(config.min_ngram >= 2 && config.max_ngram >= config.min_ngram);
        Self { config, cache: RwLock::new(FxHashMap::default()) }
    }

    /// Model with default configuration.
    pub fn default_model() -> Self {
        Self::new(WebTableConfig::default())
    }

    /// The configuration in use.
    pub fn config(&self) -> &WebTableConfig {
        &self.config
    }

    /// Number of cached token vectors.
    pub fn cache_len(&self) -> usize {
        self.cache.read().len()
    }

    /// Gaussian basis vector for a hash, seeded with the model seed.
    fn basis(&self, hash: u64) -> Vector {
        let mut rng = SplitMix64::new(combine64(self.config.seed, hash));
        Vector((0..self.config.dim).map(|_| rng.gen_gaussian() as f32).collect())
    }

    /// Compute (uncached) the vector for one token.
    fn compute_token(&self, token: &str) -> Vector {
        let mut v = self.basis(wg_util::stable_hash_str(token));
        if self.config.subword_weight > 0.0 {
            let grams = char_ngrams(token, self.config.min_ngram, self.config.max_ngram);
            if !grams.is_empty() {
                let w = self.config.subword_weight / grams.len() as f32;
                for g in &grams {
                    // Tag n-gram hashes so a 3-gram never collides with a
                    // whole token of the same spelling.
                    let h = combine64(0x6772_616d, wg_util::stable_hash_str(g));
                    v.add_scaled(&self.basis(h), w);
                }
            }
        }
        v.normalize();
        v
    }

    /// Vector for one token, via the cache.
    pub fn token_vector(&self, token: &str) -> Vector {
        let mut v = Vector::zeros(self.config.dim);
        self.token_vector_into(token, &mut v.0);
        v
    }

    /// [`Self::token_vector`] written into a caller-provided slice (length
    /// `dim`). On a cache hit this is a map read plus one `memcpy` — no
    /// heap allocation — which is what makes warm embedding passes
    /// allocation-free.
    pub fn token_vector_into(&self, token: &str, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.config.dim);
        if let Some(v) = self.cache.read().get(token) {
            out.copy_from_slice(&v.0);
            return;
        }
        let v = self.compute_token(token);
        out.copy_from_slice(&v.0);
        let mut cache = self.cache.write();
        if cache.len() < self.config.cache_capacity {
            cache.insert(token.to_string(), v);
        }
    }
}

impl EmbeddingModel for WebTableModel {
    fn dim(&self) -> usize {
        self.config.dim
    }

    fn name(&self) -> &str {
        "web-table-hashed"
    }

    fn embed_tokens(&self, tokens: &[Token]) -> Vector {
        let mut acc = Vector::zeros(self.config.dim);
        if tokens.is_empty() {
            return acc;
        }
        // One reusable scratch slot per thread: warm token vectors copy
        // into it and accumulate via the axpy kernel instead of cloning a
        // fresh Vec per token.
        let mut tmp = kernel::scratch::take_f32(self.config.dim);
        for t in tokens {
            self.token_vector_into(t, &mut tmp);
            kernel::axpy(&mut acc.0, 1.0, &tmp);
        }
        kernel::scratch::put_f32(tmp);
        acc.normalize();
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn model() -> WebTableModel {
        WebTableModel::default_model()
    }

    #[test]
    fn deterministic_across_instances() {
        let a = model().embed_text("Acme Corporation");
        let b = model().embed_text("Acme Corporation");
        assert_eq!(a, b);
    }

    #[test]
    fn token_vectors_are_unit_length() {
        let m = model();
        assert!(m.token_vector("hello").is_normalized());
        assert!(m.embed_text("hello world").is_normalized());
    }

    #[test]
    fn different_tokens_nearly_orthogonal() {
        let m = model();
        let sim = m.token_vector("zebra").cosine(&m.token_vector("quantum"));
        assert!(sim.abs() < 0.35, "unrelated tokens too similar: {sim}");
    }

    #[test]
    fn format_variants_identical() {
        let m = model();
        let a = m.embed_text("ACME CORP");
        let b = m.embed_text("Acme Corp.");
        assert!(a.cosine(&b) > 0.999, "case variants must collapse");
    }

    #[test]
    fn near_miss_strings_similar_via_subwords() {
        let m = model();
        let related = m.token_vector("streets").cosine(&m.token_vector("street"));
        let unrelated = m.token_vector("streets").cosine(&m.token_vector("finance"));
        assert!(
            related > unrelated + 0.15,
            "subword similarity missing: related {related}, unrelated {unrelated}"
        );
    }

    #[test]
    fn shared_token_makes_values_similar() {
        let m = model();
        let a = m.embed_text("Apple Inc");
        let b = m.embed_text("Apple Computer");
        let c = m.embed_text("Volkswagen Group");
        assert!(a.cosine(&b) > a.cosine(&c) + 0.2);
    }

    #[test]
    fn empty_input_is_zero() {
        let m = model();
        assert!(m.embed_tokens(&[]).is_zero());
        assert!(m.embed_text("///").is_zero());
    }

    #[test]
    fn cache_fills_and_respects_capacity() {
        let m = WebTableModel::new(WebTableConfig { cache_capacity: 2, ..Default::default() });
        let _ = m.token_vector("a");
        let _ = m.token_vector("b");
        let _ = m.token_vector("c");
        assert_eq!(m.cache_len(), 2);
        // Still correct when uncached.
        assert_eq!(m.token_vector("c"), m.token_vector("c"));
    }

    #[test]
    fn different_seeds_different_spaces() {
        let a = WebTableModel::new(WebTableConfig { seed: 1, ..Default::default() });
        let b = WebTableModel::new(WebTableConfig { seed: 2, ..Default::default() });
        let va = a.embed_text("hello");
        let vb = b.embed_text("hello");
        assert!(va.cosine(&vb).abs() < 0.4);
    }

    #[test]
    fn subword_weight_zero_removes_ngram_similarity() {
        let m = WebTableModel::new(WebTableConfig { subword_weight: 0.0, ..Default::default() });
        let sim = m.token_vector("street").cosine(&m.token_vector("streets"));
        assert!(sim.abs() < 0.35, "without subwords, near-misses look unrelated: {sim}");
    }

    #[test]
    fn date_format_variants_match() {
        let m = model();
        let a = m.embed_tokens(&tokenize("2020-01-15"));
        let b = m.embed_tokens(&tokenize("01/15/2020"));
        assert!(a.cosine(&b) > 0.999);
    }
}
