//! A miniature BERT-style transformer encoder.
//!
//! Stands in for the paper's §4.4 BERT comparison. Two findings must be
//! reproduced: (1) effectiveness *on par* with Web Table Embeddings and
//! robust to sampling, (2) roughly an order of magnitude higher inference
//! cost. We get (1) by construction — value/output projections are
//! initialized near the identity and residual connections dominate, so the
//! encoder behaves like a smoothing of the underlying hashed token vectors
//! — and (2) honestly: the forward pass executes real multi-head attention
//! and feed-forward matmuls per token, with no value-level caching.
//!
//! All weights are streamed deterministically from the model seed; there is
//! no training. This is *not* a language model — it is a computational
//! stand-in with the cost profile and stability properties the experiment
//! needs (see DESIGN.md §1 for the substitution argument).

use wg_util::hash::combine64;
use wg_util::kernel::{self, scratch};
use wg_util::rng::Rng64;
use wg_util::SplitMix64;

use crate::model::EmbeddingModel;
use crate::tokenizer::Token;
use crate::vector::Vector;
use crate::webtable::{WebTableConfig, WebTableModel};

/// Configuration for [`MiniBertModel`].
#[derive(Debug, Clone, Copy)]
pub struct MiniBertConfig {
    /// Model (and output) dimension; must match the token-embedding dim.
    pub dim: usize,
    /// Number of encoder layers.
    pub layers: usize,
    /// Attention heads (`dim % heads == 0`).
    pub heads: usize,
    /// Feed-forward expansion factor.
    pub ffn_mult: usize,
    /// Weight seed.
    pub seed: u64,
    /// Maximum sequence length (longer inputs are truncated).
    pub max_seq: usize,
    /// Perturbation scale for the near-identity projections.
    pub epsilon: f32,
}

impl Default for MiniBertConfig {
    fn default() -> Self {
        Self {
            dim: 128,
            layers: 2,
            heads: 4,
            ffn_mult: 2,
            seed: 0x4245_5254,
            max_seq: 64,
            epsilon: 0.05,
        }
    }
}

/// Row-major dense matrix.
struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Random matrix with entries `N(0, scale²)`.
    fn random(rows: usize, cols: usize, scale: f32, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let data = (0..rows * cols).map(|_| rng.gen_gaussian() as f32 * scale).collect();
        Self { rows, cols, data }
    }

    /// Identity plus `N(0, eps²)` noise (square only).
    fn near_identity(dim: usize, eps: f32, seed: u64) -> Self {
        let mut m = Self::random(dim, dim, eps, seed);
        for i in 0..dim {
            m.data[i * dim + i] += 1.0;
        }
        m
    }

    /// `out = x · M` for a row vector `x` (len == rows), via the shared
    /// blocked GEMV kernel.
    fn apply(&self, x: &[f32], out: &mut [f32]) {
        debug_assert_eq!(x.len(), self.rows);
        debug_assert_eq!(out.len(), self.cols);
        kernel::gemv(x, &self.data, self.cols, out);
    }
}

struct EncoderLayer {
    wq: Matrix,
    wk: Matrix,
    wv: Matrix,
    wo: Matrix,
    w1: Matrix,
    w2: Matrix,
}

/// The transformer encoder model.
pub struct MiniBertModel {
    config: MiniBertConfig,
    token_embedder: WebTableModel,
    layers: Vec<EncoderLayer>,
    /// Sinusoidal positional encodings, pre-scaled, flat `max_seq × dim`.
    positions: Vec<f32>,
}

impl MiniBertModel {
    /// Build the model; weights derive from `config.seed`.
    pub fn new(config: MiniBertConfig) -> Self {
        assert!(config.dim % config.heads == 0, "dim must divide into heads");
        assert!(config.layers >= 1 && config.max_seq >= 1);
        let d = config.dim;
        let scale = 1.0 / (d as f32).sqrt();
        let layers = (0..config.layers)
            .map(|l| {
                let s = |tag: u64| combine64(config.seed, combine64(l as u64, tag));
                EncoderLayer {
                    wq: Matrix::random(d, d, scale, s(1)),
                    wk: Matrix::random(d, d, scale, s(2)),
                    wv: Matrix::near_identity(d, config.epsilon, s(3)),
                    wo: Matrix::near_identity(d, config.epsilon, s(4)),
                    w1: Matrix::random(d, d * config.ffn_mult, scale, s(5)),
                    w2: Matrix::random(d * config.ffn_mult, d, config.epsilon * scale, s(6)),
                }
            })
            .collect();

        // Standard sinusoidal positions, scaled down so word identity
        // dominates position. Stored flat so the forward pass can add them
        // with one contiguous axpy per token.
        let pos_scale = 0.05f32;
        let positions = (0..config.max_seq)
            .flat_map(|p| {
                (0..d).map(move |i| {
                    let rate = 10_000f32.powf(-((i / 2 * 2) as f32) / d as f32);
                    let angle = p as f32 * rate;
                    pos_scale * if i % 2 == 0 { angle.sin() } else { angle.cos() }
                })
            })
            .collect();

        let token_embedder =
            WebTableModel::new(WebTableConfig { dim: config.dim, ..WebTableConfig::default() });
        Self { config, token_embedder, layers, positions }
    }

    /// Default configuration model.
    pub fn default_model() -> Self {
        Self::new(MiniBertConfig::default())
    }

    /// The configuration in use.
    pub fn config(&self) -> &MiniBertConfig {
        &self.config
    }

    fn layer_norm(x: &mut [f32]) {
        let n = x.len() as f32;
        let mean = x.iter().sum::<f32>() / n;
        let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
        let inv = 1.0 / (var + 1e-5).sqrt();
        for v in x.iter_mut() {
            *v = (*v - mean) * inv;
        }
    }

    #[inline]
    fn gelu(x: f32) -> f32 {
        // tanh approximation.
        0.5 * x * (1.0 + (0.797_884_6 * (x + 0.044_715 * x * x * x)).tanh())
    }

    /// Full encoder forward pass over `n` token vectors stored flat in
    /// `seq` (`n × dim`, updated in place).
    ///
    /// All intermediate state lives in thread-local scratch buffers and
    /// all matrix work goes through the blocked GEMV kernel, so a warm
    /// forward pass performs no heap allocation.
    fn forward_flat(&self, seq: &mut [f32], n: usize) {
        let d = self.config.dim;
        let heads = self.config.heads;
        let dh = d / heads;
        debug_assert_eq!(seq.len(), n * d);

        // Add positional encodings.
        for i in 0..n {
            kernel::axpy(&mut seq[i * d..(i + 1) * d], 1.0, &self.positions[i * d..(i + 1) * d]);
        }

        let mut q = scratch::take_f32(n * d);
        let mut k = scratch::take_f32(n * d);
        let mut v = scratch::take_f32(n * d);
        let mut attn_out = scratch::take_f32(n * d);
        let mut proj = scratch::take_f32(d);
        let mut ffn_hidden = scratch::take_f32(d * self.config.ffn_mult);
        let mut scores = scratch::take_f32(n);

        for layer in &self.layers {
            // Projections.
            for i in 0..n {
                let x = &seq[i * d..(i + 1) * d];
                layer.wq.apply(x, &mut q[i * d..(i + 1) * d]);
                layer.wk.apply(x, &mut k[i * d..(i + 1) * d]);
                layer.wv.apply(x, &mut v[i * d..(i + 1) * d]);
            }
            // Scaled dot-product attention, per head.
            let scale = 1.0 / (dh as f32).sqrt();
            for i in 0..n {
                attn_out[i * d..(i + 1) * d].fill(0.0);
                for h in 0..heads {
                    let hs = h * dh;
                    // Scores against every position.
                    let qi = &q[i * d + hs..i * d + hs + dh];
                    for j in 0..n {
                        scores[j] = kernel::dot(qi, &k[j * d + hs..j * d + hs + dh]) * scale;
                    }
                    // Softmax.
                    let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    let mut total = 0.0;
                    for s in scores.iter_mut() {
                        *s = (*s - max).exp();
                        total += *s;
                    }
                    for (j, s) in scores.iter().enumerate() {
                        kernel::axpy(
                            &mut attn_out[i * d + hs..i * d + hs + dh],
                            s / total,
                            &v[j * d + hs..j * d + hs + dh],
                        );
                    }
                }
            }
            // Output projection + residual + LN; then FFN + residual + LN.
            for i in 0..n {
                let x = &mut seq[i * d..(i + 1) * d];
                layer.wo.apply(&attn_out[i * d..(i + 1) * d], &mut proj);
                // Residual dominates: attention contributes at half weight
                // so the encoder smooths rather than scrambles.
                kernel::axpy(x, 0.5, &proj);
                Self::layer_norm(x);

                layer.w1.apply(x, &mut ffn_hidden);
                for h in ffn_hidden.iter_mut() {
                    *h = Self::gelu(*h);
                }
                layer.w2.apply(&ffn_hidden, &mut proj);
                kernel::axpy(x, 1.0, &proj);
                Self::layer_norm(x);
            }
        }

        scratch::put_f32(scores);
        scratch::put_f32(ffn_hidden);
        scratch::put_f32(proj);
        scratch::put_f32(attn_out);
        scratch::put_f32(v);
        scratch::put_f32(k);
        scratch::put_f32(q);
    }
}

impl EmbeddingModel for MiniBertModel {
    fn dim(&self) -> usize {
        self.config.dim
    }

    fn name(&self) -> &str {
        "mini-bert"
    }

    fn embed_tokens(&self, tokens: &[Token]) -> Vector {
        if tokens.is_empty() {
            return Vector::zeros(self.config.dim);
        }
        let d = self.config.dim;
        let n = tokens.len().min(self.config.max_seq);
        let mut seq = scratch::take_f32(n * d);
        for (i, t) in tokens.iter().take(n).enumerate() {
            self.token_embedder.token_vector_into(t, &mut seq[i * d..(i + 1) * d]);
        }
        self.forward_flat(&mut seq, n);
        // Mean pool + normalize. The pooled output is the only per-embed
        // allocation; everything upstream ran on scratch buffers.
        let mut pooled = Vector::zeros(d);
        for i in 0..n {
            kernel::axpy(&mut pooled.0, 1.0, &seq[i * d..(i + 1) * d]);
        }
        scratch::put_f32(seq);
        pooled.scale(1.0 / n as f32);
        pooled.normalize();
        pooled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_util::timing::timed;

    fn model() -> MiniBertModel {
        MiniBertModel::default_model()
    }

    #[test]
    fn deterministic() {
        let a = model().embed_text("Acme Corporation");
        let b = model().embed_text("Acme Corporation");
        assert_eq!(a, b);
    }

    #[test]
    fn output_is_normalized() {
        assert!(model().embed_text("hello world").is_normalized());
    }

    #[test]
    fn empty_is_zero() {
        assert!(model().embed_tokens(&[]).is_zero());
    }

    #[test]
    fn stays_close_to_base_embedding_structure() {
        // Pairwise similarity ordering should roughly agree with the base
        // hashed model — the "on par effectiveness" property.
        let bert = model();
        let base = WebTableModel::new(WebTableConfig { dim: 128, ..Default::default() });
        let texts = ["Apple Inc", "Apple Computer", "Microsoft Corp", "2020-01-15", "banana split"];
        let mut agreements = 0;
        let mut total = 0;
        for i in 0..texts.len() {
            for j in (i + 1)..texts.len() {
                for l in 0..texts.len() {
                    for m in (l + 1)..texts.len() {
                        if (i, j) >= (l, m) {
                            continue;
                        }
                        let b1 = bert.embed_text(texts[i]).cosine(&bert.embed_text(texts[j]));
                        let b2 = bert.embed_text(texts[l]).cosine(&bert.embed_text(texts[m]));
                        let w1 = base.embed_text(texts[i]).cosine(&base.embed_text(texts[j]));
                        let w2 = base.embed_text(texts[l]).cosine(&base.embed_text(texts[m]));
                        if (w1 - w2).abs() < 0.05 {
                            continue; // too close to call in the base space
                        }
                        total += 1;
                        if (b1 > b2) == (w1 > w2) {
                            agreements += 1;
                        }
                    }
                }
            }
        }
        assert!(total > 0);
        let rate = agreements as f64 / total as f64;
        assert!(rate > 0.8, "pairwise order agreement only {rate:.2}");
    }

    #[test]
    fn materially_slower_than_base_model() {
        let bert = model();
        let base = WebTableModel::new(WebTableConfig { dim: 128, ..Default::default() });
        // Warm both (fills base token cache).
        let texts: Vec<String> = (0..50).map(|i| format!("value number {i}")).collect();
        for t in &texts {
            let _ = bert.embed_text(t);
            let _ = base.embed_text(t);
        }
        let (_, t_bert) = timed(|| {
            for t in &texts {
                std::hint::black_box(bert.embed_text(t));
            }
        });
        let (_, t_base) = timed(|| {
            for t in &texts {
                std::hint::black_box(base.embed_text(t));
            }
        });
        assert!(
            t_bert.as_secs_f64() > 3.0 * t_base.as_secs_f64(),
            "bert {:?} vs base {:?}",
            t_bert,
            t_base
        );
    }

    #[test]
    fn truncates_long_sequences() {
        let m = MiniBertModel::new(MiniBertConfig { max_seq: 4, ..Default::default() });
        let tokens: Vec<String> = (0..100).map(|i| format!("t{i}")).collect();
        let v = m.embed_tokens(&tokens);
        assert!(v.is_normalized());
    }

    #[test]
    #[should_panic(expected = "dim must divide")]
    fn rejects_bad_head_split() {
        let _ = MiniBertModel::new(MiniBertConfig { dim: 130, heads: 4, ..Default::default() });
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        MiniBertModel::layer_norm(&mut x);
        let mean: f32 = x.iter().sum::<f32>() / 4.0;
        let var: f32 = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }
}
