//! The Sigma Sample Database stand-in.
//!
//! The paper's §4.1 describes a 98-table Snowflake corpus spanning retail,
//! financial, demographic and usage data, with no ground truth (§4.3.3 runs
//! ad-hoc queries picked by colleagues). This generator reproduces that
//! corpus — including the running example's join graph:
//!
//! ```text
//! SALESFORCE.ACCOUNT.Name  ←→  SALESFORCE.LEAD.Company      (case variant)
//! SALESFORCE.ACCOUNT.Name  ←→  STOCKS.INDUSTRIES.Company Name (upper variant)
//! STOCKS.INDUSTRIES.Ticker ←→  STOCKS.PRICES.Ticker          (exact)
//! RETAIL.TRANSACTIONS.ProductSku ←→ RETAIL.PRODUCTS.Sku      (exact, FK⊂PK)
//! CENSUS.POPULATION.City   ←→  CENSUS.RESTAURANTS.City, BIKES.City
//! ```
//!
//! so the Joey walkthrough (discover → inspect LEAD → pick INDUSTRIES →
//! add `Industry Group` → chain through `TICKER`) is executable end to end.

use wg_store::{Column, ColumnRef, Database, Table, Warehouse};
use wg_util::rng::{Rng64, Xoshiro256pp};

use crate::groundtruth::{Corpus, GroundTruth};
use crate::vocab::{Domain, Variant};

/// Build the Sigma corpus. `row_scale` scales all row counts (1.0 would be
/// the paper's multi-million average; examples use 0.1 or less).
pub fn build_sigma(row_scale: f64, seed: u64) -> Corpus {
    let mut rng = Xoshiro256pp::new(seed);
    let n = |base: usize| ((base as f64 * row_scale) as usize).max(40);

    let mut warehouse = Warehouse::new("sigma_sample");

    // ---- company universe shared by the walkthrough tables -----------------
    let companies: Vec<String> = (0..400u64).map(|i| Domain::Company.value(i)).collect();
    let sectors: Vec<String> = (0..30u64).map(|i| Domain::Sector.value(i)).collect();
    let tickers: Vec<String> = (0..400u64).map(|i| Domain::Ticker.value(i)).collect();

    // SALESFORCE -------------------------------------------------------------
    let mut salesforce = Database::new("SALESFORCE");
    {
        let rows = 300.max(n(3_000));
        let account_companies: Vec<String> =
            (0..rows).map(|i| companies[i % 300].clone()).collect();
        salesforce.add_table(
            Table::new(
                "ACCOUNT",
                vec![
                    Column::text("Name", account_companies.clone()),
                    Column::text(
                        "BillingCity",
                        (0..rows).map(|i| Domain::City.value((i % 90) as u64)).collect::<Vec<_>>(),
                    ),
                    Column::ints(
                        "Employees",
                        (0..rows).map(|_| 10 + rng.gen_range(20_000) as i64).collect(),
                    ),
                    Column::floats(
                        "AnnualRevenue",
                        (0..rows).map(|_| (rng.gen_f64() * 5e8).round()).collect(),
                    ),
                ],
            )
            .expect("valid schema"),
        );
        let rows = 180.max(n(2_000));
        salesforce.add_table(
            Table::new(
                "LEAD",
                vec![
                    // Case-folded variant of a company subset: semantically
                    // joinable with ACCOUNT.Name, low exact overlap.
                    Column::text(
                        "Company",
                        (0..rows)
                            .map(|i| Variant::Lower.apply(&companies[i % 180]))
                            .collect::<Vec<_>>(),
                    ),
                    Column::text(
                        "ContactName",
                        (0..rows).map(|i| Domain::Person.value(i as u64)).collect::<Vec<_>>(),
                    ),
                    Column::text(
                        "Title",
                        (0..rows)
                            .map(|i| Domain::JobTitle.value((i % 18) as u64))
                            .collect::<Vec<_>>(),
                    ),
                    Column::text(
                        "Email",
                        (0..rows).map(|i| Domain::Email.value(i as u64)).collect::<Vec<_>>(),
                    ),
                ],
            )
            .expect("valid schema"),
        );
        let rows = n(1_500);
        salesforce.add_table(
            Table::new(
                "OPPORTUNITY",
                vec![
                    Column::text(
                        "AccountName",
                        (0..rows).map(|i| companies[i % 250].clone()).collect::<Vec<_>>(),
                    ),
                    Column::text(
                        "Stage",
                        (0..rows)
                            .map(|_| *rng.choose(&["Prospecting", "Qualified", "Won", "Lost"]))
                            .collect::<Vec<_>>(),
                    ),
                    Column::floats(
                        "Amount",
                        (0..rows).map(|_| (rng.gen_f64() * 1e6).round() / 100.0).collect(),
                    ),
                    Column::text(
                        "CloseDate",
                        (0..rows)
                            .map(|_| Domain::Date.value(rng.gen_range(2_000)))
                            .collect::<Vec<_>>(),
                    ),
                ],
            )
            .expect("valid schema"),
        );
    }
    warehouse.add_database(salesforce);

    // STOCKS -----------------------------------------------------------------
    let mut stocks = Database::new("STOCKS");
    {
        let rows = 350.max(n(350));
        stocks.add_table(
            Table::new(
                "INDUSTRIES",
                vec![
                    // Uppercase variant, superset of ACCOUNT's companies.
                    Column::text(
                        "Company Name",
                        (0..rows)
                            .map(|i| Variant::Upper.apply(&companies[i % 350]))
                            .collect::<Vec<_>>(),
                    ),
                    Column::text(
                        "Ticker",
                        (0..rows).map(|i| tickers[i % 350].clone()).collect::<Vec<_>>(),
                    ),
                    Column::text(
                        "Industry Group",
                        (0..rows).map(|i| sectors[i % 30].clone()).collect::<Vec<_>>(),
                    ),
                    Column::text(
                        "Sub Industry",
                        (0..rows)
                            .map(|i| format!("{} Sub {}", sectors[i % 30], i % 4))
                            .collect::<Vec<_>>(),
                    ),
                ],
            )
            .expect("valid schema"),
        );
        let rows = 1_280.max(n(50_000));
        stocks.add_table(
            Table::new(
                "PRICES",
                vec![
                    Column::text(
                        "Ticker",
                        (0..rows).map(|i| tickers[i % 320].clone()).collect::<Vec<_>>(),
                    ),
                    Column::text(
                        "Date",
                        (0..rows).map(|i| Domain::Date.value((i / 320) as u64)).collect::<Vec<_>>(),
                    ),
                    Column::floats(
                        "Open",
                        (0..rows)
                            .map(|_| (rng.gen_f64() * 500.0 * 100.0).round() / 100.0)
                            .collect(),
                    ),
                    Column::floats(
                        "Close",
                        (0..rows)
                            .map(|_| (rng.gen_f64() * 500.0 * 100.0).round() / 100.0)
                            .collect(),
                    ),
                    Column::ints(
                        "Volume",
                        (0..rows).map(|_| rng.gen_range(10_000_000) as i64).collect(),
                    ),
                ],
            )
            .expect("valid schema"),
        );
    }
    warehouse.add_database(stocks);

    // RETAIL -----------------------------------------------------------------
    let mut retail = Database::new("RETAIL");
    {
        let skus: Vec<String> = (0..800u64).map(|i| format!("SKU-{i:06}")).collect();
        let rows = 800.max(n(800));
        retail.add_table(
            Table::new(
                "PRODUCTS",
                vec![
                    Column::text(
                        "Sku",
                        (0..rows).map(|i| skus[i % 800].clone()).collect::<Vec<_>>(),
                    ),
                    Column::text(
                        "ProductName",
                        (0..rows).map(|i| Domain::Product.value(i as u64)).collect::<Vec<_>>(),
                    ),
                    Column::text(
                        "Category",
                        (0..rows).map(|i| sectors[i % 12].clone()).collect::<Vec<_>>(),
                    ),
                    Column::floats(
                        "Price",
                        (0..rows)
                            .map(|_| (rng.gen_f64() * 300.0 * 100.0).round() / 100.0)
                            .collect(),
                    ),
                ],
            )
            .expect("valid schema"),
        );
        let rows = n(80_000);
        retail.add_table(
            Table::new(
                "TRANSACTIONS",
                vec![
                    Column::ints("TxnId", (0..rows as i64).collect()),
                    Column::ints("StoreId", (0..rows).map(|_| rng.gen_range(120) as i64).collect()),
                    Column::text(
                        "ProductSku",
                        (0..rows).map(|_| skus[rng.gen_zipf(500, 1.0)].clone()).collect::<Vec<_>>(),
                    ),
                    Column::ints(
                        "Quantity",
                        (0..rows).map(|_| 1 + rng.gen_range(9) as i64).collect(),
                    ),
                    Column::floats(
                        "Amount",
                        (0..rows)
                            .map(|_| (rng.gen_f64() * 400.0 * 100.0).round() / 100.0)
                            .collect(),
                    ),
                    Column::text(
                        "Date",
                        (0..rows)
                            .map(|_| Domain::Date.value(rng.gen_range(1_400)))
                            .collect::<Vec<_>>(),
                    ),
                ],
            )
            .expect("valid schema"),
        );
        let rows = 120.max(n(120));
        retail.add_table(
            Table::new(
                "STORES",
                vec![
                    Column::ints("StoreId", (0..rows as i64).collect()),
                    Column::text(
                        "City",
                        (0..rows).map(|i| Domain::City.value((i % 100) as u64)).collect::<Vec<_>>(),
                    ),
                    Column::text(
                        "State",
                        (0..rows)
                            .map(|_| *rng.choose(&["CA", "NY", "TX", "WA", "IL", "MA"]))
                            .collect::<Vec<_>>(),
                    ),
                ],
            )
            .expect("valid schema"),
        );
    }
    warehouse.add_database(retail);

    // CENSUS -----------------------------------------------------------------
    let mut census = Database::new("CENSUS");
    {
        let rows = 200.max(n(200));
        census.add_table(
            Table::new(
                "POPULATION",
                vec![
                    Column::text(
                        "City",
                        (0..rows).map(|i| Domain::City.value((i % 200) as u64)).collect::<Vec<_>>(),
                    ),
                    Column::ints(
                        "Population",
                        (0..rows).map(|_| 10_000 + rng.gen_range(5_000_000) as i64).collect(),
                    ),
                    Column::ints(
                        "MedianIncome",
                        (0..rows).map(|_| 30_000 + rng.gen_range(120_000) as i64).collect(),
                    ),
                ],
            )
            .expect("valid schema"),
        );
        let rows = n(900);
        census.add_table(
            Table::new(
                "RESTAURANTS",
                vec![
                    Column::text(
                        "Name",
                        (0..rows)
                            .map(|i| format!("{} Kitchen", Domain::Person.value(i as u64)))
                            .collect::<Vec<_>>(),
                    ),
                    Column::text(
                        "City",
                        (0..rows)
                            .map(|_| Domain::City.value(rng.gen_range(150)))
                            .collect::<Vec<_>>(),
                    ),
                    Column::text(
                        "Cuisine",
                        (0..rows)
                            .map(|_| {
                                *rng.choose(&[
                                    "Italian", "Thai", "Mexican", "Indian", "French", "Diner",
                                ])
                            })
                            .collect::<Vec<_>>(),
                    ),
                ],
            )
            .expect("valid schema"),
        );
        let rows = 150.max(n(150));
        census.add_table(
            Table::new(
                "BIKES",
                vec![
                    Column::ints("StationId", (0..rows as i64).collect()),
                    Column::text(
                        "City",
                        (0..rows)
                            .map(|_| Domain::City.value(rng.gen_range(120)))
                            .collect::<Vec<_>>(),
                    ),
                    Column::ints(
                        "Docks",
                        (0..rows).map(|_| 8 + rng.gen_range(40) as i64).collect(),
                    ),
                ],
            )
            .expect("valid schema"),
        );
    }
    warehouse.add_database(census);

    // CLOUD_USAGE --------------------------------------------------------------
    let mut usage = Database::new("CLOUD_USAGE");
    {
        let accounts: Vec<String> = (0..500u64).map(|i| Domain::HexId.value(i)).collect();
        let rows = n(60_000);
        usage.add_table(
            Table::new(
                "METERING",
                vec![
                    Column::text(
                        "AccountId",
                        (0..rows)
                            .map(|_| accounts[rng.gen_zipf(500, 1.1)].clone())
                            .collect::<Vec<_>>(),
                    ),
                    Column::text(
                        "Service",
                        (0..rows)
                            .map(|_| *rng.choose(&["compute", "storage", "query", "streaming"]))
                            .collect::<Vec<_>>(),
                    ),
                    Column::text(
                        "UsageDate",
                        (0..rows)
                            .map(|_| Domain::Date.value(rng.gen_range(720)))
                            .collect::<Vec<_>>(),
                    ),
                    Column::floats(
                        "CreditsUsed",
                        (0..rows)
                            .map(|_| (rng.gen_f64() * 100.0 * 100.0).round() / 100.0)
                            .collect(),
                    ),
                ],
            )
            .expect("valid schema"),
        );
        let rows = n(40_000);
        usage.add_table(
            Table::new(
                "APP_EVENTS",
                vec![
                    Column::text(
                        "AccountId",
                        (0..rows)
                            .map(|_| accounts[rng.gen_zipf(400, 1.1)].clone())
                            .collect::<Vec<_>>(),
                    ),
                    Column::text(
                        "EventType",
                        (0..rows)
                            .map(|_| {
                                *rng.choose(&["login", "query_run", "dashboard_view", "export"])
                            })
                            .collect::<Vec<_>>(),
                    ),
                    Column::text(
                        "Ts",
                        (0..rows)
                            .map(|_| Domain::Date.value(rng.gen_range(720)))
                            .collect::<Vec<_>>(),
                    ),
                ],
            )
            .expect("valid schema"),
        );
    }
    warehouse.add_database(usage);

    // WEBLOGS ------------------------------------------------------------------
    let mut weblogs = Database::new("WEBLOGS");
    {
        let ips: Vec<String> = (0..2_000u64)
            .map(|i| {
                let h = wg_util::hash::mix64(i);
                format!(
                    "{}.{}.{}.{}",
                    10 + h % 200,
                    (h >> 8) % 256,
                    (h >> 16) % 256,
                    (h >> 24) % 256
                )
            })
            .collect();
        let rows = n(90_000);
        weblogs.add_table(
            Table::new(
                "REQUESTS",
                vec![
                    Column::text(
                        "Ip",
                        (0..rows)
                            .map(|_| ips[rng.gen_zipf(2_000, 1.0)].clone())
                            .collect::<Vec<_>>(),
                    ),
                    Column::text(
                        "Url",
                        (0..rows)
                            .map(|_| {
                                format!(
                                    "/app/{}",
                                    rng.choose(&["home", "query", "admin", "docs", "login"])
                                )
                            })
                            .collect::<Vec<_>>(),
                    ),
                    Column::ints(
                        "Status",
                        (0..rows)
                            .map(|_| *rng.choose(&[200i64, 200, 200, 304, 404, 500]))
                            .collect(),
                    ),
                ],
            )
            .expect("valid schema"),
        );
        let rows = n(20_000);
        weblogs.add_table(
            Table::new(
                "SESSIONS",
                vec![
                    Column::text(
                        "Ip",
                        (0..rows)
                            .map(|_| ips[rng.gen_zipf(1_500, 1.0)].clone())
                            .collect::<Vec<_>>(),
                    ),
                    Column::ints(
                        "DurationSecs",
                        (0..rows).map(|_| rng.gen_range(3_600) as i64).collect(),
                    ),
                ],
            )
            .expect("valid schema"),
        );
    }
    warehouse.add_database(weblogs);

    // ---- filler tables up to 98 total ------------------------------------------
    let db_names = ["SALESFORCE", "STOCKS", "RETAIL", "CENSUS", "CLOUD_USAGE", "WEBLOGS"];
    let mut t = 0usize;
    while warehouse.num_tables() < 98 {
        let db_name = db_names[t % db_names.len()];
        let rows = n(100 + rng.gen_index(8_000));
        let ncols = 6 + rng.gen_index(18);
        let mut cols: Vec<Column> = Vec::with_capacity(ncols);
        for s in 0..ncols {
            let mut col_rng = rng.fork((t * 100 + s) as u64);
            cols.push(crate::nextiajd::filler_column_public(t, s, rows, &mut col_rng));
        }
        warehouse
            .database_mut(db_name)
            .add_table(Table::new(format!("EXTRA_{t:02}"), cols).expect("valid schema"));
        t += 1;
    }

    // Ad-hoc query workload (§4.3.3: colleagues picked columns; no truth).
    let queries = vec![
        ColumnRef::new("SALESFORCE", "ACCOUNT", "Name"),
        ColumnRef::new("RETAIL", "TRANSACTIONS", "ProductSku"),
        ColumnRef::new("CENSUS", "POPULATION", "City"),
        ColumnRef::new("CLOUD_USAGE", "METERING", "AccountId"),
    ];
    Corpus { name: "sigma".to_string(), warehouse, truth: GroundTruth::new(), queries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_store::KeyNorm;

    fn corpus() -> Corpus {
        build_sigma(0.05, 0x51)
    }

    #[test]
    fn has_98_tables() {
        let c = corpus();
        assert_eq!(c.warehouse.num_tables(), 98);
        assert!(c.warehouse.num_columns() > 600);
    }

    #[test]
    fn walkthrough_joins_hold() {
        let c = corpus();
        let account = c.warehouse.column(&ColumnRef::new("SALESFORCE", "ACCOUNT", "Name")).unwrap();
        let lead = c.warehouse.column(&ColumnRef::new("SALESFORCE", "LEAD", "Company")).unwrap();
        let industries =
            c.warehouse.column(&ColumnRef::new("STOCKS", "INDUSTRIES", "Company Name")).unwrap();
        // Semantically joinable (normalized), low exact overlap for LEAD.
        assert!(wg_store::containment(lead, account, KeyNorm::AlphaNum) > 0.9);
        assert!(wg_store::containment(account, industries, KeyNorm::AlphaNum) > 0.9);
        assert!(wg_store::containment(account, industries, KeyNorm::Exact) < 0.05);
        // Ticker chain.
        let ind_ticker =
            c.warehouse.column(&ColumnRef::new("STOCKS", "INDUSTRIES", "Ticker")).unwrap();
        let price_ticker =
            c.warehouse.column(&ColumnRef::new("STOCKS", "PRICES", "Ticker")).unwrap();
        assert!(wg_store::containment(price_ticker, ind_ticker, KeyNorm::Exact) > 0.9);
    }

    #[test]
    fn retail_fk_chain() {
        let c = corpus();
        let sku = c.warehouse.column(&ColumnRef::new("RETAIL", "PRODUCTS", "Sku")).unwrap();
        let txn =
            c.warehouse.column(&ColumnRef::new("RETAIL", "TRANSACTIONS", "ProductSku")).unwrap();
        assert!(wg_store::containment(txn, sku, KeyNorm::Exact) > 0.95);
    }

    #[test]
    fn queries_resolve() {
        let c = corpus();
        for q in &c.queries {
            assert!(c.warehouse.column(q).is_ok(), "query column missing: {q}");
        }
    }

    #[test]
    fn deterministic() {
        let a = build_sigma(0.02, 9);
        let b = build_sigma(0.02, 9);
        assert_eq!(a.warehouse.num_columns(), b.warehouse.num_columns());
        let qa = a.warehouse.column(&a.queries[0]).unwrap();
        let qb = b.warehouse.column(&b.queries[0]).unwrap();
        assert_eq!(qa, qb);
    }
}
