//! Ground truth and join-quality labeling.
//!
//! NextiaJD (Flores et al., EDBT'21) labels the quality of a directed
//! candidate pair (query `A`, candidate `B`) from two empirically
//! thresholded measures: the containment of `A`'s values in `B`, and the
//! cardinality proportion `min(|A|,|B|)/max(|A|,|B|)`. The paper keeps
//! pairs labeled **Good** and **High** as answers (§4.1); so do we.

use wg_store::{ColumnRef, Warehouse};
use wg_util::FxHashMap;

/// NextiaJD-style join-quality levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Quality {
    /// Containment < 0.1: no meaningful join.
    None,
    /// Containment ≥ 0.1.
    Poor,
    /// Containment ≥ 0.25.
    Moderate,
    /// Containment ≥ 0.5 and proportion ≥ 0.1.
    Good,
    /// Containment ≥ 0.75 and proportion ≥ 0.25.
    High,
}

/// Label a directed pair from containment `c` (of the query in the
/// candidate) and cardinality proportion `k` — the empirically determined
/// thresholds of Flores et al.
pub fn label_quality(c: f64, k: f64) -> Quality {
    if c >= 0.75 && k >= 0.25 {
        Quality::High
    } else if c >= 0.5 && k >= 0.1 {
        Quality::Good
    } else if c >= 0.25 {
        Quality::Moderate
    } else if c >= 0.1 {
        Quality::Poor
    } else {
        Quality::None
    }
}

/// Directed ground truth: query column → set of answer columns.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    answers: FxHashMap<ColumnRef, Vec<ColumnRef>>,
}

impl GroundTruth {
    /// Empty truth.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an answer for a query (idempotent).
    pub fn add(&mut self, query: ColumnRef, answer: ColumnRef) {
        let entry = self.answers.entry(query).or_default();
        if !entry.contains(&answer) {
            entry.push(answer);
        }
    }

    /// The answers for a query (empty slice when unknown).
    pub fn answers(&self, query: &ColumnRef) -> &[ColumnRef] {
        self.answers.get(query).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// All queries that have at least one answer, sorted for determinism.
    pub fn queries(&self) -> Vec<ColumnRef> {
        let mut qs: Vec<ColumnRef> =
            self.answers.iter().filter(|(_, a)| !a.is_empty()).map(|(q, _)| q.clone()).collect();
        qs.sort();
        qs
    }

    /// Number of queries.
    pub fn num_queries(&self) -> usize {
        self.answers.values().filter(|a| !a.is_empty()).count()
    }

    /// Mean answers per query (the "Avg. # Answers" column of Table 1).
    pub fn avg_answers(&self) -> f64 {
        let n = self.num_queries();
        if n == 0 {
            return 0.0;
        }
        let total: usize = self.answers.values().map(|a| a.len()).sum();
        total as f64 / n as f64
    }

    /// Keep only the given queries (used to match a target query count).
    pub fn retain_queries(&mut self, keep: &[ColumnRef]) {
        let keep: std::collections::HashSet<&ColumnRef> = keep.iter().collect();
        self.answers.retain(|q, _| keep.contains(q));
    }
}

/// A complete evaluation corpus: data + truth + the query workload.
pub struct Corpus {
    /// Corpus label ("testbedS", "spider", ...).
    pub name: String,
    /// The warehouse holding the generated tables.
    pub warehouse: Warehouse,
    /// Directed ground truth.
    pub truth: GroundTruth,
    /// The evaluation queries (all have ≥1 answer).
    pub queries: Vec<ColumnRef>,
}

impl Corpus {
    /// Table 1-style statistics:
    /// `(tables, columns, avg rows, queries, avg answers)`.
    pub fn stats(&self) -> (usize, usize, f64, usize, f64) {
        (
            self.warehouse.num_tables(),
            self.warehouse.num_columns(),
            self.warehouse.avg_rows(),
            self.queries.len(),
            self.truth.avg_answers(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_thresholds() {
        assert_eq!(label_quality(1.0, 1.0), Quality::High);
        assert_eq!(label_quality(0.8, 0.3), Quality::High);
        assert_eq!(label_quality(0.8, 0.2), Quality::Good);
        assert_eq!(label_quality(0.6, 0.15), Quality::Good);
        assert_eq!(label_quality(0.6, 0.05), Quality::Moderate);
        assert_eq!(label_quality(0.3, 0.9), Quality::Moderate);
        assert_eq!(label_quality(0.15, 0.9), Quality::Poor);
        assert_eq!(label_quality(0.05, 0.9), Quality::None);
    }

    #[test]
    fn quality_ordering() {
        assert!(Quality::High > Quality::Good);
        assert!(Quality::Good > Quality::Moderate);
        assert!(Quality::Moderate > Quality::Poor);
        assert!(Quality::Poor > Quality::None);
    }

    #[test]
    fn truth_bookkeeping() {
        let mut t = GroundTruth::new();
        let q = ColumnRef::new("d", "t1", "c");
        let a1 = ColumnRef::new("d", "t2", "c");
        let a2 = ColumnRef::new("d", "t3", "c");
        t.add(q.clone(), a1.clone());
        t.add(q.clone(), a1.clone()); // duplicate ignored
        t.add(q.clone(), a2.clone());
        assert_eq!(t.answers(&q).len(), 2);
        assert_eq!(t.num_queries(), 1);
        assert!((t.avg_answers() - 2.0).abs() < 1e-12);
        assert_eq!(t.queries(), vec![q.clone()]);
        assert!(t.answers(&a1).is_empty());
    }

    #[test]
    fn retain_queries_filters() {
        let mut t = GroundTruth::new();
        let q1 = ColumnRef::new("d", "t1", "c");
        let q2 = ColumnRef::new("d", "t2", "c");
        t.add(q1.clone(), q2.clone());
        t.add(q2.clone(), q1.clone());
        t.retain_queries(std::slice::from_ref(&q1));
        assert_eq!(t.num_queries(), 1);
        assert!(t.answers(&q2).is_empty());
    }
}
