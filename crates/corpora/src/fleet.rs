//! Customer-warehouse fleet model (paper §5.1).
//!
//! The paper reports heavy-tailed fleet statistics: the *median* customer
//! warehouse has 450 tables but the *mean* is over 12,700; the median table
//! has 7,700 rows but the mean is 1.7 **billion**. Median ≪ mean pins down
//! log-normal parameters directly (`median = e^μ`, `mean = e^{μ+σ²/2}`),
//! which is how [`FleetSpec::paper`] is calibrated. The sampler generates a
//! fleet of warehouse *shapes* (no data) and prices active sampling against
//! full scans under the CDW cost model — the argument for passive sampling.

use wg_store::CdwConfig;
use wg_util::rng::{Rng64, Xoshiro256pp};

/// Log-normal parameters `(μ, σ)` derived from a median and a mean.
fn lognormal_from_median_mean(median: f64, mean: f64) -> (f64, f64) {
    let mu = median.ln();
    let sigma = (2.0 * (mean / median).ln()).max(0.0).sqrt();
    (mu, sigma)
}

/// Fleet-shape distribution parameters.
#[derive(Debug, Clone, Copy)]
pub struct FleetSpec {
    /// Number of customer warehouses to sample.
    pub customers: usize,
    /// `(μ, σ)` of tables-per-warehouse.
    pub tables: (f64, f64),
    /// `(μ, σ)` of rows-per-table.
    pub rows: (f64, f64),
    /// Mean columns per table.
    pub avg_columns: f64,
    /// Mean bytes per value on the wire.
    pub bytes_per_value: f64,
    /// Sampler seed.
    pub seed: u64,
}

impl FleetSpec {
    /// Calibrated to the paper's §5.1 numbers: median 450 / mean 12,700
    /// tables; median 7,700 / mean 1.7B rows; 25.7 columns per table.
    pub fn paper(customers: usize, seed: u64) -> Self {
        Self {
            customers,
            tables: lognormal_from_median_mean(450.0, 12_700.0),
            rows: lognormal_from_median_mean(7_700.0, 1.7e9),
            avg_columns: 25.7,
            bytes_per_value: 18.0,
            seed,
        }
    }
}

/// Statistics of one sampled fleet.
#[derive(Debug, Clone)]
pub struct FleetSample {
    /// Tables per warehouse, one entry per customer.
    pub tables_per_warehouse: Vec<u64>,
    /// Rows per table pooled across the fleet (capped sample for memory).
    pub rows_per_table: Vec<u64>,
    /// Mean columns per table used for cost accounting.
    pub avg_columns: f64,
    /// Mean bytes per value used for cost accounting.
    pub bytes_per_value: f64,
}

impl FleetSample {
    /// Draw a fleet from the spec.
    pub fn draw(spec: &FleetSpec) -> FleetSample {
        let mut rng = Xoshiro256pp::new(spec.seed);
        let mut tables_per_warehouse = Vec::with_capacity(spec.customers);
        let mut rows_per_table = Vec::new();
        for _ in 0..spec.customers {
            let t = spec_sample(&mut rng, spec.tables).max(1.0) as u64;
            tables_per_warehouse.push(t);
            // Keep at most 2,000 table sizes per customer to bound memory;
            // sampled uniformly, so the aggregate statistics stay unbiased.
            let keep = t.min(2_000);
            for _ in 0..keep {
                rows_per_table.push(spec_sample(&mut rng, spec.rows).max(1.0) as u64);
            }
        }
        FleetSample {
            tables_per_warehouse,
            rows_per_table,
            avg_columns: spec.avg_columns,
            bytes_per_value: spec.bytes_per_value,
        }
    }

    /// Median of tables per warehouse.
    pub fn median_tables(&self) -> u64 {
        median(&self.tables_per_warehouse)
    }

    /// Mean of tables per warehouse.
    pub fn mean_tables(&self) -> f64 {
        mean(&self.tables_per_warehouse)
    }

    /// Median rows per table.
    pub fn median_rows(&self) -> u64 {
        median(&self.rows_per_table)
    }

    /// Mean rows per table.
    pub fn mean_rows(&self) -> f64 {
        mean(&self.rows_per_table)
    }

    /// Dollars to actively sample every column of every table at `n` rows
    /// per column, under the given CDW pricing.
    pub fn active_sampling_cost_usd(&self, n: u64, config: &CdwConfig) -> f64 {
        let mut bytes = 0.0f64;
        for (wi, &t) in self.tables_per_warehouse.iter().enumerate() {
            // Rows were (possibly) capped per customer; scale back up.
            let kept = t.min(2_000) as f64;
            let scale = t as f64 / kept;
            let _ = wi;
            bytes += kept * scale * self.avg_columns * n as f64 * self.bytes_per_value;
        }
        // Sampling reads at most the table's rows, but n is tiny relative
        // to mean rows so the cap is negligible at fleet scale.
        bytes / 1e12 * config.usd_per_tb
    }

    /// Dollars for one full scan of the entire fleet (the §3.1.3 cost the
    /// one-pass profiling systems implicitly assume).
    pub fn full_scan_cost_usd(&self, config: &CdwConfig) -> f64 {
        let mut per_table_bytes = 0.0f64;
        for &r in &self.rows_per_table {
            per_table_bytes += r as f64 * self.avg_columns * self.bytes_per_value;
        }
        // rows_per_table is a capped uniform sample; rescale to the fleet.
        let sampled: u64 = self.tables_per_warehouse.iter().map(|&t| t.min(2_000)).sum();
        let total: u64 = self.tables_per_warehouse.iter().sum();
        per_table_bytes * (total as f64 / sampled.max(1) as f64) / 1e12 * config.usd_per_tb
    }
}

fn spec_sample(rng: &mut Xoshiro256pp, (mu, sigma): (f64, f64)) -> f64 {
    rng.gen_log_normal(mu, sigma)
}

fn median(xs: &[u64]) -> u64 {
    if xs.is_empty() {
        return 0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_unstable();
    sorted[sorted.len() / 2]
}

fn mean(xs: &[u64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().map(|&x| x as f64).sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lognormal_calibration_inverts() {
        let (mu, sigma) = lognormal_from_median_mean(450.0, 12_700.0);
        assert!((mu.exp() - 450.0).abs() < 1e-6);
        assert!(((mu + sigma * sigma / 2.0).exp() - 12_700.0).abs() < 1.0);
    }

    #[test]
    fn fleet_matches_paper_statistics() {
        let sample = FleetSample::draw(&FleetSpec::paper(4_000, 7));
        let med_t = sample.median_tables() as f64;
        let mean_t = sample.mean_tables();
        assert!((200.0..900.0).contains(&med_t), "median tables {med_t}");
        assert!(mean_t > med_t * 5.0, "mean {mean_t} should dwarf median {med_t}");
        let med_r = sample.median_rows() as f64;
        let mean_r = sample.mean_rows();
        assert!((3_000.0..20_000.0).contains(&med_r), "median rows {med_r}");
        assert!(mean_r > 1e6, "mean rows {mean_r} should be huge");
    }

    #[test]
    fn sampling_is_cheaper_than_full_scans() {
        let sample = FleetSample::draw(&FleetSpec::paper(500, 7));
        let config = CdwConfig::default();
        let sampled = sample.active_sampling_cost_usd(1_000, &config);
        let full = sample.full_scan_cost_usd(&config);
        assert!(sampled > 0.0);
        assert!(full > sampled * 50.0, "full ${full:.0} should dwarf sampled ${sampled:.2}");
    }

    #[test]
    fn deterministic() {
        let a = FleetSample::draw(&FleetSpec::paper(100, 3));
        let b = FleetSample::draw(&FleetSpec::paper(100, 3));
        assert_eq!(a.tables_per_warehouse, b.tables_per_warehouse);
    }
}
