//! Synthetic evaluation corpora with ground truth.
//!
//! The paper evaluates on three table repositories (§4.1): the NextiaJD
//! testbeds, Spider, and the Sigma Sample Database. None can be shipped
//! here, so this crate *generates* corpora with the same shape (Table 1's
//! tables / columns / rows / queries / answers) and — more importantly —
//! the same discriminating structure:
//!
//! * joinable column pairs planted at controlled containment and
//!   cardinality, labeled by the NextiaJD join-quality rule;
//! * **semantic** pairs whose value formatting differs across tables
//!   (casing, punctuation, prefixes, zero-padding, date order) — the pairs
//!   that separate embedding-based discovery from syntactic overlap;
//! * distractor columns drawn from the same vocabulary domains but over
//!   disjoint entity ranges — semantically close, *not* joinable, which is
//!   what keeps precision@k < 1 for every system;
//! * Spider-style FK⊂PK pairs with high containment but low Jaccard.
//!
//! Everything derives deterministically from a seed.

pub mod fleet;
pub mod groundtruth;
pub mod nextiajd;
pub mod sigma;
pub mod spider;
pub mod vocab;

pub use fleet::{FleetSample, FleetSpec};
pub use groundtruth::{label_quality, Corpus, GroundTruth, Quality};
pub use nextiajd::{build_testbed, TestbedSpec};
pub use sigma::build_sigma;
pub use spider::build_spider;
pub use vocab::{Domain, Variant};
