//! Spider-style PK/FK corpus.
//!
//! The paper uses Spider (Yu et al., EMNLP'18) as a PK/FK-detection
//! benchmark: join paths between primary and foreign keys are parsed from
//! schema files as ground truth (§4.1, Table 1: 70 tables, 429 columns,
//! ~7.6k avg rows, 60 queries, 1.1 avg answers). We generate multi-database
//! schemas with that shape:
//!
//! * each database has 1–2 **dimension** tables (a PK plus entity
//!   attributes) and 1–3 **fact** tables whose FK columns draw values from
//!   a referenced PK — high containment, usually *low Jaccard* (the
//!   asymmetry that sinks threshold-on-Jaccard systems here);
//! * FK columns share (most of) the referenced PK's name, which is what
//!   gives D3L's name evidence its recall jump at k = 10 (§4.3.2);
//! * queries are FK columns; the answer is the referenced PK (occasionally
//!   two databases share an entity id space, yielding the >1.0 average).

use wg_store::{Column, ColumnRef, Database, Table, Warehouse};
use wg_util::rng::{Rng64, Xoshiro256pp};

use crate::groundtruth::{Corpus, GroundTruth};
use crate::vocab::Domain;

/// Entity kinds a database theme can revolve around.
const THEMES: &[(&str, Domain)] = &[
    ("singer", Domain::Person),
    ("concert", Domain::City),
    ("employee", Domain::Person),
    ("company", Domain::Company),
    ("store", Domain::City),
    ("product", Domain::Product),
    ("student", Domain::Person),
    ("course", Domain::JobTitle),
    ("customer", Domain::Person),
    ("airport", Domain::City),
    ("team", Domain::Company),
    ("document", Domain::Product),
];

/// Build the Spider-style corpus. `row_scale` scales the ~7.6k average
/// rows; `seed` controls all randomness.
pub fn build_spider(row_scale: f64, seed: u64) -> Corpus {
    let mut rng = Xoshiro256pp::new(seed);
    let avg_rows = ((7_632f64 * row_scale) as usize).max(40);

    let mut warehouse = Warehouse::new("spider");
    let mut truth = GroundTruth::new();
    let mut tables_made = 0usize;
    let mut columns_made = 0usize;
    let mut db_index = 0usize;

    // Track dimension PKs that share an id space across databases (the
    // occasional second answer that makes avg answers ≈ 1.1).
    let mut shared_pk: Option<(ColumnRef, u64, usize)> = None;

    while tables_made < 70 {
        let (theme, domain) = THEMES[db_index % THEMES.len()];
        let db_name = format!("db_{db_index:02}_{theme}");
        let mut db = Database::new(&db_name);
        let n_dims = 1 + rng.gen_index(2); // 1..=2
        let n_facts = 1 + rng.gen_index(3); // 1..=3

        // Dimension tables.
        let mut pks: Vec<(ColumnRef, u64, usize)> = Vec::new(); // (ref, id base, count)
        for d in 0..n_dims {
            let entity = if d == 0 { theme.to_string() } else { format!("{theme}_{d}") };
            let pk_count = (avg_rows / 2 + rng.gen_index(avg_rows)).max(20);
            // ~10% of dimensions share an id space with a previous database.
            // Draw the coin before inspecting shared_pk so the RNG stream
            // (and thus generated corpora) is independent of sharing state.
            let id_base = match (rng.gen_bool(0.1), &shared_pk) {
                (true, Some(sp)) => sp.1,
                _ => (db_index as u64 * 100 + d as u64) * 1_000_000,
            };
            let pk_name = format!("{entity}_id");
            let mut cols = vec![Column::ints(
                pk_name.clone(),
                (0..pk_count as i64).map(|i| id_base as i64 + i).collect(),
            )];
            cols.push(Column::text(
                "name",
                (0..pk_count as u64).map(|i| domain.value(id_base + i)).collect::<Vec<_>>(),
            ));
            // A couple of attribute columns.
            for (ai, attr) in ["city", "country", "rating", "year", "capacity"]
                .iter()
                .take(3 + rng.gen_index(3))
                .enumerate()
            {
                let col = match *attr {
                    "rating" => Column::floats(
                        "rating",
                        (0..pk_count).map(|_| (rng.gen_f64() * 50.0).round() / 10.0).collect(),
                    ),
                    "year" => Column::ints(
                        "year",
                        (0..pk_count).map(|_| 1980 + rng.gen_range(45) as i64).collect(),
                    ),
                    "capacity" => Column::ints(
                        "capacity",
                        (0..pk_count).map(|_| 50 + rng.gen_range(80_000) as i64).collect(),
                    ),
                    name => Column::text(
                        name,
                        (0..pk_count as u64)
                            .map(|i| Domain::City.value((ai as u64) * 7_000 + i % 150))
                            .collect::<Vec<_>>(),
                    ),
                };
                cols.push(col);
            }
            columns_made += cols.len();
            let table_name = format!("{entity}s");
            db.add_table(Table::new(&table_name, cols).expect("valid schema"));
            tables_made += 1;
            let pk_ref = ColumnRef::new(&db_name, &table_name, &pk_name);
            if shared_pk.is_none() || rng.gen_bool(0.15) {
                shared_pk = Some((pk_ref.clone(), id_base, pk_count));
            }
            pks.push((pk_ref, id_base, pk_count));
        }

        // Fact tables with FKs.
        for f in 0..n_facts {
            if tables_made >= 70 {
                break;
            }
            let rows = (avg_rows + rng.gen_index(avg_rows)).max(30);
            let table_name = format!("{theme}_facts_{f}");
            let mut cols: Vec<Column> = vec![Column::ints("id", (0..rows as i64).collect())];
            // 1..=2 FK columns referencing this database's dimensions.
            let n_fks = 1 + rng.gen_index(pks.len().min(2));
            for fk in pks.iter().take(n_fks) {
                let (pk_ref, id_base, pk_count) = fk;
                // FK draws a *subset* of PK values (zipf-skewed): high
                // containment in the PK, low Jaccard when pk_count >> used.
                let used = (pk_count / (2 + rng.gen_index(8))).max(5);
                let fk_values: Vec<i64> =
                    (0..rows).map(|_| *id_base as i64 + rng.gen_zipf(used, 0.8) as i64).collect();
                let fk_name = pk_ref.column.clone(); // same name as the PK
                cols.push(Column::ints(&fk_name, fk_values));
                let fk_ref = ColumnRef::new(&db_name, &table_name, &fk_name);
                truth.add(fk_ref.clone(), pk_ref.clone());
                // If another database shares this id space, it is a second
                // correct answer.
                if let Some((other_ref, other_base, _)) = &shared_pk {
                    if other_base == id_base && other_ref != pk_ref {
                        truth.add(fk_ref, other_ref.clone());
                    }
                }
            }
            // Measure columns.
            cols.push(Column::floats(
                "amount",
                (0..rows).map(|_| (rng.gen_f64() * 1e4).round() / 100.0).collect(),
            ));
            cols.push(Column::text(
                "created",
                (0..rows).map(|_| Domain::Date.value(rng.gen_range(1_800))).collect::<Vec<_>>(),
            ));
            if rng.gen_bool(0.5) {
                cols.push(Column::ints(
                    "quantity",
                    (0..rows).map(|_| 1 + rng.gen_range(20) as i64).collect(),
                ));
            }
            if rng.gen_bool(0.5) {
                cols.push(Column::text(
                    "status",
                    (0..rows)
                        .map(|_| *rng.choose(&["open", "closed", "pending", "failed"]))
                        .collect::<Vec<_>>(),
                ));
            }
            columns_made += cols.len();
            db.add_table(Table::new(&table_name, cols).expect("valid schema"));
            tables_made += 1;
        }

        warehouse.add_database(db);
        db_index += 1;
    }
    let _ = columns_made;

    // Query workload: 60 FK columns.
    let mut queries = truth.queries();
    if queries.len() > 60 {
        let keep_idx = rng.sample_indices(queries.len(), 60);
        let mut keep: Vec<ColumnRef> = keep_idx.into_iter().map(|i| queries[i].clone()).collect();
        keep.sort();
        truth.retain_queries(&keep);
        queries = keep;
    }

    Corpus { name: "spider".to_string(), warehouse, truth, queries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_store::KeyNorm;

    fn corpus() -> Corpus {
        build_spider(0.1, 0x5919)
    }

    #[test]
    fn shape_roughly_matches_table1() {
        let c = corpus();
        let (tables, columns, _avg_rows, queries, avg_answers) = c.stats();
        assert_eq!(tables, 70);
        assert!((360..520).contains(&columns), "columns {columns}");
        assert!((30..=60).contains(&queries), "queries {queries}");
        assert!((1.0..1.6).contains(&avg_answers), "avg answers {avg_answers}");
    }

    #[test]
    fn fk_contained_in_pk_with_low_jaccard() {
        let c = corpus();
        let mut checked = 0;
        for q in c.queries.iter().take(15) {
            let fk = c.warehouse.column(q).unwrap();
            for a in c.truth.answers(q) {
                let pk = c.warehouse.column(a).unwrap();
                let cont = wg_store::containment(fk, pk, KeyNorm::Exact);
                assert!(cont > 0.95, "FK {q} containment in PK {a} is {cont}");
                checked += 1;
            }
        }
        assert!(checked > 0);
        // At least some pairs have the punishing low-Jaccard shape.
        let mut low_jaccard = 0;
        for q in c.queries.iter().take(15) {
            let fk = c.warehouse.column(q).unwrap();
            for a in c.truth.answers(q) {
                let pk = c.warehouse.column(a).unwrap();
                if wg_store::jaccard(fk, pk, KeyNorm::Exact) < 0.4 {
                    low_jaccard += 1;
                }
            }
        }
        assert!(low_jaccard > 0, "no low-Jaccard FK/PK pairs generated");
    }

    #[test]
    fn fk_and_pk_share_names() {
        let c = corpus();
        // The primary answer (the directly referenced PK) always shares the
        // FK's name; secondary answers from cross-database shared id spaces
        // may be named differently — exactly the cases D3L's name evidence
        // cannot rescue.
        for q in c.queries.iter().take(20) {
            let answers = c.truth.answers(q);
            assert_eq!(q.column, answers[0].column, "FK/PK name mismatch: {q} vs {}", answers[0]);
        }
    }

    #[test]
    fn queries_are_fact_columns_answers_are_dims() {
        let c = corpus();
        for q in &c.queries {
            assert!(q.table.contains("facts"), "query not in a fact table: {q}");
            for a in c.truth.answers(q) {
                assert!(!a.table.contains("facts"), "answer in a fact table: {a}");
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = build_spider(0.05, 1);
        let b = build_spider(0.05, 1);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.warehouse.num_columns(), b.warehouse.num_columns());
    }
}
