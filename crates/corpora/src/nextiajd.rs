//! NextiaJD-style testbed generation.
//!
//! Flores et al. assembled four testbeds (XS/S/M/L) of open datasets and
//! labeled join quality between attribute pairs. We generate testbeds with
//! the same corpus shape (paper Table 1) and, crucially, the structure that
//! differentiates the three discovery systems:
//!
//! * **join communities** — groups of columns over one entity universe,
//!   planted across tables at controlled containment/cardinality, half of
//!   them re-formatted by a [`Variant`] (the *semantic* joins syntactic
//!   systems miss);
//! * **hard negatives** — same-domain columns over disjoint entity ranges
//!   (semantically close, containment ≈ 0);
//! * **filler** — numeric/date/id/categorical columns that populate the
//!   remaining schema like real datasets.
//!
//! Row values are zipf-distributed over each column's universe with a
//! popularity order shared inside a community, mirroring how real joinable
//! columns share their *frequent* values — this is what makes small row
//! samples informative (§4.4).

use wg_store::{Column, Database, Table, Warehouse};
use wg_util::rng::{Rng64, Xoshiro256pp};
use wg_util::{FxHashMap, FxHashSet};

use crate::groundtruth::{label_quality, Corpus, GroundTruth, Quality};
use crate::vocab::{Domain, Variant};

/// Shape parameters of one testbed (paper Table 1 row).
#[derive(Debug, Clone, Copy)]
pub struct TestbedSpec {
    /// Corpus label.
    pub name: &'static str,
    /// Number of tables.
    pub tables: usize,
    /// Total number of columns.
    pub columns: usize,
    /// Average rows per table *before* scaling.
    pub avg_rows: usize,
    /// Target number of evaluation queries.
    pub target_queries: usize,
    /// Multiplier on `avg_rows` (1.0 = paper scale; evaluation defaults
    /// scale down — the shape of the results is row-count independent,
    /// the wall-clock numbers are reported at the configured scale).
    pub row_scale: f64,
    /// Generator seed.
    pub seed: u64,
}

impl TestbedSpec {
    /// testbedXS: 28 tables, 257 columns, 1,938 avg rows, 35 queries.
    pub fn xs(row_scale: f64) -> Self {
        Self {
            name: "testbedXS",
            tables: 28,
            columns: 257,
            avg_rows: 1_938,
            target_queries: 35,
            row_scale,
            seed: 0x0005_0001,
        }
    }

    /// testbedS: 46 tables, 2,553 columns, 209,646 avg rows, 177 queries.
    pub fn s(row_scale: f64) -> Self {
        Self {
            name: "testbedS",
            tables: 46,
            columns: 2_553,
            avg_rows: 209_646,
            target_queries: 177,
            row_scale,
            seed: 0x0005_0002,
        }
    }

    /// testbedM: 46 tables, 1,067 columns, 3,175,904 avg rows, 188 queries.
    pub fn m(row_scale: f64) -> Self {
        Self {
            name: "testbedM",
            tables: 46,
            columns: 1_067,
            avg_rows: 3_175_904,
            target_queries: 188,
            row_scale,
            seed: 0x0005_0003,
        }
    }

    /// testbedL: 19 tables, 541 columns, 12,288,165 avg rows, 92 queries.
    pub fn l(row_scale: f64) -> Self {
        Self {
            name: "testbedL",
            tables: 19,
            columns: 541,
            avg_rows: 12_288_165,
            target_queries: 92,
            row_scale,
            seed: 0x0005_0004,
        }
    }

    /// Effective average rows after scaling (floor 60).
    pub fn scaled_avg_rows(&self) -> usize {
        ((self.avg_rows as f64 * self.row_scale) as usize).max(60)
    }
}

/// One planted community member before materialization.
struct Member {
    table: usize,
    name: String,
    domain: Domain,
    variant: Variant,
    /// Entity indices (into the domain) realized by this column.
    indices: Vec<u64>,
    community: usize,
}

/// Build a testbed corpus from its spec.
pub fn build_testbed(spec: &TestbedSpec) -> Corpus {
    let mut rng = Xoshiro256pp::new(spec.seed);
    let avg_rows = spec.scaled_avg_rows();

    // ---- table shapes -----------------------------------------------------
    let rows_per_table: Vec<usize> = (0..spec.tables)
        .map(|_| {
            let r = rng.gen_log_normal((avg_rows as f64).ln() - 0.18, 0.6);
            (r as usize).clamp(60, avg_rows * 6)
        })
        .collect();
    let mut cols_per_table = distribute(spec.columns, spec.tables, &mut rng);
    // Every table keeps at least 2 columns.
    for c in cols_per_table.iter_mut() {
        *c = (*c).max(2);
    }
    let mut remaining: Vec<usize> = cols_per_table.clone();

    // ---- plant communities -------------------------------------------------
    let domains = Domain::all();
    let n_communities = spec.target_queries.div_ceil(3).max(2);
    let mut members: Vec<Member> = Vec::new();
    for community in 0..n_communities {
        let domain = *rng.choose(domains);
        // Disjoint entity range per community.
        let base = community as u64 * 1_000_000;
        let hub_universe = (rng.gen_log_normal(4.8, 0.9) as usize).clamp(20, 800);
        let size = 4 + rng.gen_index(4); // 4..=7 members

        // Tables hosting this community: distinct, with capacity.
        let mut hosts: Vec<usize> = (0..spec.tables).filter(|&t| remaining[t] > 0).collect();
        rng.shuffle(&mut hosts);
        hosts.truncate(size);
        if hosts.len() < 2 {
            continue; // not enough room anywhere; skip community
        }

        // Hub goes to the roomiest host (largest table) so its universe fits.
        hosts.sort_by_key(|&t| std::cmp::Reverse(rows_per_table[t]));
        for (slot, &table) in hosts.iter().enumerate() {
            remaining[table] -= 1;
            let cap = (rows_per_table[table] as f64 * 0.8) as usize;
            let is_hub = slot == 0;
            let (count, containment) = if is_hub {
                (hub_universe.min(cap).max(5), 1.0)
            } else {
                let ratio = 0.3 + 0.7 * rng.gen_f64();
                let c = match rng.gen_index(100) {
                    // A quarter of members sit at Moderate-or-below
                    // containment: semantically close, *not* answers —
                    // the precision pressure real testbeds exhibit.
                    0..=39 => 1.0,
                    40..=74 => 0.55 + 0.4 * rng.gen_f64(),
                    _ => 0.25 + 0.3 * rng.gen_f64(),
                };
                (((hub_universe as f64 * ratio) as usize).clamp(5, cap.max(5)), c)
            };
            // `containment` of this member's values lie inside the hub
            // universe [base, base+hub); the rest comes from the disjoint
            // noise range [base+hub, ...).
            let n_inside = ((count as f64) * containment).round() as usize;
            let n_inside = n_inside.min(count).min(hub_universe);
            let mut idx: Vec<u64> = rng
                .sample_indices(hub_universe, n_inside)
                .into_iter()
                .map(|i| base + i as u64)
                .collect();
            for j in 0..(count - n_inside) as u64 {
                idx.push(base + hub_universe as u64 + j);
            }
            // Popularity order shared across the community: sort by entity
            // index so zipf ranks agree between members.
            idx.sort_unstable();

            let variant =
                if rng.gen_bool(0.5) { *rng.choose(domain.variants()) } else { Variant::Identity };
            members.push(Member {
                table,
                name: member_name(domain, community, slot, &mut rng),
                domain,
                variant,
                indices: idx,
                community,
            });
        }

        // Hard negatives: same domain, disjoint range, somewhere else.
        let n_negatives = 1 + usize::from(rng.gen_bool(0.5));
        for neg in 0..n_negatives {
            let candidates: Vec<usize> =
                (0..spec.tables).filter(|&t| remaining[t] > 0 && !hosts.contains(&t)).collect();
            if let Some(&table) = candidates.get(neg % candidates.len().max(1)) {
                remaining[table] -= 1;
                let count =
                    (hub_universe / 2).clamp(5, (rows_per_table[table] as f64 * 0.8) as usize);
                let neg_base = base + 500_000 + neg as u64 * 10_000;
                members.push(Member {
                    table,
                    name: member_name(domain, community, 90 + neg, &mut rng),
                    domain,
                    variant: Variant::Identity,
                    indices: (0..count as u64).map(|i| neg_base + i).collect(),
                    community: usize::MAX, // belongs to no community
                });
            }
        }
    }

    // ---- ground truth from planted universes --------------------------------
    let mut truth = GroundTruth::new();
    let refs: Vec<wg_store::ColumnRef> = members
        .iter()
        .map(|m| wg_store::ColumnRef::new("nextiajd", table_name(m.table), m.name.clone()))
        .collect();
    // Normalized (AlphaNum) key sets per member.
    let keysets: Vec<FxHashSet<u64>> = members
        .iter()
        .map(|m| {
            m.indices.iter().map(|&i| alphanum_key(&m.variant.apply(&m.domain.value(i)))).collect()
        })
        .collect();
    let mut by_community: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
    for (i, m) in members.iter().enumerate() {
        if m.community != usize::MAX {
            by_community.entry(m.community).or_default().push(i);
        }
    }
    for group in by_community.values() {
        for &a in group {
            for &b in group {
                if a == b {
                    continue;
                }
                let inter = keysets[a].iter().filter(|k| keysets[b].contains(*k)).count();
                let c = inter as f64 / keysets[a].len().max(1) as f64;
                let (na, nb) = (keysets[a].len(), keysets[b].len());
                let prop = na.min(nb) as f64 / na.max(nb).max(1) as f64;
                if label_quality(c, prop) >= Quality::Good {
                    truth.add(refs[a].clone(), refs[b].clone());
                }
            }
        }
    }

    // ---- materialize tables --------------------------------------------------
    let mut tables: Vec<Vec<Column>> = vec![Vec::new(); spec.tables];
    for m in &members {
        let mut col_rng = rng.fork(wg_util::stable_hash_str(&m.name));
        tables[m.table].push(materialize_member(m, rows_per_table[m.table], &mut col_rng));
    }
    for (t, slots) in remaining.iter().enumerate() {
        for s in 0..*slots {
            let mut col_rng = rng.fork((t * 1000 + s) as u64);
            tables[t].push(filler_column(t, s, rows_per_table[t], &mut col_rng));
        }
    }

    let mut db = Database::new("nextiajd");
    for (t, columns) in tables.into_iter().enumerate() {
        db.add_table(Table::new(table_name(t), columns).expect("generated schema is valid"));
    }
    let mut warehouse = Warehouse::new(spec.name);
    warehouse.add_database(db);

    // ---- query workload --------------------------------------------------------
    let mut queries = truth.queries();
    if queries.len() > spec.target_queries {
        // Deterministic subsample to the target count.
        let keep_idx = rng.sample_indices(queries.len(), spec.target_queries);
        let mut keep: Vec<wg_store::ColumnRef> =
            keep_idx.into_iter().map(|i| queries[i].clone()).collect();
        keep.sort();
        truth.retain_queries(&keep);
        queries = keep;
    }

    Corpus { name: spec.name.to_string(), warehouse, truth, queries }
}

fn table_name(t: usize) -> String {
    format!("ds_{t:03}")
}

fn member_name(domain: Domain, community: usize, slot: usize, rng: &mut Xoshiro256pp) -> String {
    // Real dataset columns have erratic names; sometimes informative,
    // sometimes not. Suffixes keep names unique per table.
    let suffixes = ["", "_name", "_code", "_key", "_ref", "_value"];
    if rng.gen_bool(0.6) {
        format!("{}{}_c{community}s{slot}", domain.label(), rng.choose(&suffixes))
    } else {
        format!("attr_{community}_{slot}")
    }
}

/// Materialize a member column: every universe value appears at least once,
/// remaining rows fill by zipf over the shared popularity order.
fn materialize_member(m: &Member, rows: usize, rng: &mut Xoshiro256pp) -> Column {
    let universe: Vec<String> =
        m.indices.iter().map(|&i| m.variant.apply(&m.domain.value(i))).collect();
    Column::text(m.name.clone(), fill_zipf(&universe, rows, rng))
}

/// All universe values once, then zipf-distributed repetition.
fn fill_zipf(universe: &[String], rows: usize, rng: &mut Xoshiro256pp) -> Vec<String> {
    let mut out: Vec<String> = Vec::with_capacity(rows);
    let s = 0.6 + 0.6 * rng.gen_f64();
    for i in 0..rows {
        if i < universe.len() {
            out.push(universe[i].clone());
        } else {
            out.push(universe[rng.gen_zipf(universe.len(), s)].clone());
        }
    }
    // Shuffle so the guaranteed-once prefix is not positionally biased.
    rng.shuffle(&mut out);
    out
}

/// A filler column that is not part of any community (shared with the
/// Sigma generator for its padding tables).
pub(crate) fn filler_column_public(
    t: usize,
    s: usize,
    rows: usize,
    rng: &mut Xoshiro256pp,
) -> Column {
    filler_column(t, s, rows, rng)
}

/// A filler column that is not part of any community.
fn filler_column(t: usize, s: usize, rows: usize, rng: &mut Xoshiro256pp) -> Column {
    match rng.gen_index(5) {
        0 => {
            // Numeric measure.
            let scale = 10f64.powi(rng.gen_index(6) as i32);
            let name = *rng.choose(&["amount", "price", "total", "score", "count", "weight"]);
            Column::floats(
                format!("{name}_{t}_{s}"),
                (0..rows).map(|_| (rng.gen_f64() * scale * 100.0).round() / 100.0).collect(),
            )
        }
        1 => {
            // Integer id-ish.
            Column::ints(
                format!("num_{t}_{s}"),
                (0..rows as i64).map(|i| i * 7 + t as i64).collect(),
            )
        }
        2 => {
            // Low-cardinality category.
            let k = 3 + rng.gen_index(12);
            let base = rng.gen_range(1_000) * 50;
            let universe: Vec<String> =
                (0..k as u64).map(|i| Domain::Sector.value(base + i)).collect();
            Column::text(format!("category_{t}_{s}"), fill_zipf(&universe, rows, rng))
        }
        3 => {
            // Dates.
            let start = rng.gen_range(2_000);
            let span = 30 + rng.gen_range(700);
            let universe: Vec<String> = (0..span).map(|i| Domain::Date.value(start + i)).collect();
            Column::text(format!("date_{t}_{s}"), fill_zipf(&universe, rows, rng))
        }
        _ => {
            // Free-text-ish names from an unused entity range.
            let domain = *rng.choose(Domain::all());
            let base = 900_000_000 + (t as u64 * 10_000 + s as u64) * 1_000;
            let k = (20 + rng.gen_index(200)).min((rows as f64 * 0.8) as usize).max(5);
            let universe: Vec<String> = (0..k as u64).map(|i| domain.value(base + i)).collect();
            Column::text(format!("{}_{t}_{s}", domain.label()), fill_zipf(&universe, rows, rng))
        }
    }
}

fn alphanum_key(s: &str) -> u64 {
    let folded: String =
        s.chars().filter(|c| c.is_alphanumeric()).flat_map(|c| c.to_lowercase()).collect();
    wg_util::stable_hash_str(&folded)
}

/// Split `total` into `parts` positive integers with mild jitter.
fn distribute(total: usize, parts: usize, rng: &mut Xoshiro256pp) -> Vec<usize> {
    let base = total / parts;
    let mut out: Vec<usize> = (0..parts)
        .map(|_| {
            let jitter = 0.7 + 0.6 * rng.gen_f64();
            ((base as f64 * jitter) as usize).max(1)
        })
        .collect();
    // Fix the sum exactly.
    let mut sum: usize = out.iter().sum();
    let mut i = 0;
    while sum < total {
        out[i % parts] += 1;
        sum += 1;
        i += 1;
    }
    while sum > total {
        if out[i % parts] > 1 {
            out[i % parts] -= 1;
            sum -= 1;
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_store::KeyNorm;

    fn xs() -> Corpus {
        build_testbed(&TestbedSpec::xs(0.1))
    }

    #[test]
    fn shape_matches_spec() {
        let c = xs();
        let (tables, columns, avg_rows, queries, avg_answers) = c.stats();
        assert_eq!(tables, 28);
        assert_eq!(columns, 257);
        assert!(avg_rows > 50.0, "avg rows {avg_rows}");
        assert!((20..=35).contains(&queries), "queries {queries}");
        assert!(avg_answers >= 1.0, "avg answers {avg_answers}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = xs();
        let b = xs();
        assert_eq!(a.queries, b.queries);
        let ra = a.warehouse.iter_columns().count();
        let rb = b.warehouse.iter_columns().count();
        assert_eq!(ra, rb);
        // Spot-check actual data equality.
        let qa = a.warehouse.column(&a.queries[0]).unwrap();
        let qb = b.warehouse.column(&b.queries[0]).unwrap();
        assert_eq!(qa, qb);
    }

    #[test]
    fn answers_exist_and_are_cross_table() {
        let c = xs();
        for q in &c.queries {
            let answers = c.truth.answers(q);
            assert!(!answers.is_empty());
            for a in answers {
                assert!(!a.same_table(q), "answer in query's own table");
                assert!(c.warehouse.column(a).is_ok(), "answer column missing: {a}");
            }
        }
    }

    #[test]
    fn ground_truth_labels_hold_on_materialized_data() {
        let c = xs();
        // The labels were computed on planted universes; verify they hold
        // on the actual stored columns under AlphaNum normalization.
        for q in c.queries.iter().take(10) {
            let qc = c.warehouse.column(q).unwrap();
            for a in c.truth.answers(q) {
                let ac = c.warehouse.column(a).unwrap();
                let cont = wg_store::containment(qc, ac, KeyNorm::AlphaNum);
                assert!(cont >= 0.45, "materialized containment {cont:.2} too low for {q} -> {a}");
            }
        }
    }

    #[test]
    fn semantic_pairs_exist() {
        // At least some answers must be invisible to exact matching but
        // visible after normalization — the paper's core motivation.
        let c = xs();
        let mut semantic = 0;
        let mut total = 0;
        for q in &c.queries {
            let qc = c.warehouse.column(q).unwrap();
            for a in c.truth.answers(q) {
                let ac = c.warehouse.column(a).unwrap();
                total += 1;
                let exact = wg_store::containment(qc, ac, KeyNorm::Exact);
                let semantic_cont = wg_store::containment(qc, ac, KeyNorm::AlphaNum);
                if semantic_cont >= 0.5 && exact < 0.25 {
                    semantic += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(semantic * 5 >= total, "too few semantic-only pairs: {semantic}/{total}");
    }

    #[test]
    fn row_scale_scales_rows() {
        let small = build_testbed(&TestbedSpec::xs(0.05));
        let large = build_testbed(&TestbedSpec::xs(0.5));
        assert!(large.warehouse.num_rows() > small.warehouse.num_rows() * 3);
    }

    #[test]
    fn distribute_sums_exactly() {
        let mut rng = Xoshiro256pp::new(1);
        for (total, parts) in [(257, 28), (2553, 46), (100, 7), (7, 7)] {
            let d = distribute(total, parts, &mut rng);
            assert_eq!(d.iter().sum::<usize>(), total);
            assert!(d.iter().all(|&x| x >= 1));
        }
    }

    #[test]
    fn specs_match_table1() {
        assert_eq!(TestbedSpec::s(1.0).tables, 46);
        assert_eq!(TestbedSpec::s(1.0).columns, 2553);
        assert_eq!(TestbedSpec::m(1.0).columns, 1067);
        assert_eq!(TestbedSpec::l(1.0).tables, 19);
        assert_eq!(TestbedSpec::xs(1.0).avg_rows, 1938);
    }
}
