//! Vocabulary domains and format variants.
//!
//! A [`Domain`] is an infinite, deterministic family of entity strings:
//! `domain.value(i)` is the `i`-th entity, injective in `i`. Corpus
//! generators carve disjoint index ranges out of a domain to build value
//! universes that *look* alike (same shape, same token vocabulary) without
//! overlapping — the raw material for both joinable pairs (shared ranges)
//! and semantically-similar distractors (disjoint ranges).
//!
//! A [`Variant`] is a formatting transformation applied to a whole column —
//! the "semantically joinable but not syntactically equal" mechanism of
//! the paper's problem statement. Variants are chosen so the AlphaNum key
//! normalization (and token-level embeddings) can still align values.

use wg_util::hash::{combine64, mix64};

const ADJECTIVES: &[&str] = &[
    "Global",
    "United",
    "Advanced",
    "Pacific",
    "Northern",
    "Dynamic",
    "Premier",
    "Apex",
    "Quantum",
    "Sterling",
    "Pioneer",
    "Summit",
    "Coastal",
    "Evergreen",
    "Crimson",
    "Golden",
    "Silver",
    "Atlas",
    "Nova",
    "Vertex",
    "Prime",
    "Central",
    "Allied",
    "Integrated",
    "National",
    "Metro",
    "Urban",
    "Rural",
    "Eastern",
    "Western",
    "Superior",
    "Frontier",
];

const COMPANY_NOUNS: &[&str] = &[
    "Dynamics",
    "Systems",
    "Industries",
    "Holdings",
    "Logistics",
    "Networks",
    "Analytics",
    "Materials",
    "Foods",
    "Energy",
    "Robotics",
    "Biotech",
    "Capital",
    "Media",
    "Motors",
    "Textiles",
    "Software",
    "Pharma",
    "Mining",
    "Airways",
    "Shipping",
    "Retail",
    "Labs",
    "Partners",
    "Technologies",
    "Solutions",
    "Ventures",
    "Brands",
];

const COMPANY_SUFFIXES: &[&str] = &["Inc", "Corp", "LLC", "Group", "Ltd", "Co"];

const FIRST_NAMES: &[&str] = &[
    "James",
    "Mary",
    "Robert",
    "Patricia",
    "John",
    "Jennifer",
    "Michael",
    "Linda",
    "David",
    "Elizabeth",
    "William",
    "Barbara",
    "Richard",
    "Susan",
    "Joseph",
    "Jessica",
    "Thomas",
    "Sarah",
    "Charles",
    "Karen",
    "Christopher",
    "Lisa",
    "Daniel",
    "Nancy",
    "Matthew",
    "Betty",
    "Anthony",
    "Margaret",
    "Mark",
    "Sandra",
    "Donald",
    "Ashley",
    "Steven",
    "Kimberly",
    "Andrew",
    "Emily",
    "Paul",
    "Donna",
    "Joshua",
    "Michelle",
    "Kenneth",
    "Carol",
    "Kevin",
    "Amanda",
    "Brian",
    "Dorothy",
    "George",
    "Melissa",
    "Timothy",
    "Deborah",
    "Ronald",
    "Stephanie",
    "Edward",
    "Rebecca",
    "Jason",
    "Sharon",
    "Jeffrey",
    "Laura",
    "Ryan",
    "Cynthia",
    "Jacob",
    "Kathleen",
    "Gary",
    "Amy",
];

const LAST_NAMES: &[&str] = &[
    "Smith",
    "Johnson",
    "Williams",
    "Brown",
    "Jones",
    "Garcia",
    "Miller",
    "Davis",
    "Rodriguez",
    "Martinez",
    "Hernandez",
    "Lopez",
    "Gonzalez",
    "Wilson",
    "Anderson",
    "Thomas",
    "Taylor",
    "Moore",
    "Jackson",
    "Martin",
    "Lee",
    "Perez",
    "Thompson",
    "White",
    "Harris",
    "Sanchez",
    "Clark",
    "Ramirez",
    "Lewis",
    "Robinson",
    "Walker",
    "Young",
    "Allen",
    "King",
    "Wright",
    "Scott",
    "Torres",
    "Nguyen",
    "Hill",
    "Flores",
    "Green",
    "Adams",
    "Nelson",
    "Baker",
    "Hall",
    "Rivera",
    "Campbell",
    "Mitchell",
    "Carter",
    "Roberts",
    "Gomez",
    "Phillips",
    "Evans",
    "Turner",
    "Diaz",
    "Parker",
    "Cruz",
    "Edwards",
    "Collins",
    "Reyes",
    "Stewart",
    "Morris",
    "Morales",
    "Murphy",
];

const CITY_PREFIXES: &[&str] = &[
    "New", "Fort", "Lake", "Port", "North", "South", "East", "West", "Mount", "Saint", "Grand",
    "Little", "Upper", "Lower", "Old", "Royal",
];

const CITY_STEMS: &[&str] = &[
    "Haven", "Ridge", "Brook", "Field", "Wood", "Dale", "Ford", "Shore", "Spring", "Falls",
    "Crest", "View", "Grove", "Hollow", "Meadow", "Point", "Harbor", "Bluff", "Glen", "Creek",
    "Vale", "Bridge", "Crossing", "Heights",
];

const SECTORS: &[&str] = &[
    "Energy",
    "Materials",
    "Industrials",
    "Consumer Discretionary",
    "Consumer Staples",
    "Health Care",
    "Financials",
    "Information Technology",
    "Communication Services",
    "Utilities",
    "Real Estate",
    "Aerospace & Defense",
    "Automobiles",
    "Banks",
    "Capital Goods",
    "Commercial Services",
    "Diversified Financials",
    "Food & Beverage",
    "Household Products",
    "Insurance",
    "Media & Entertainment",
    "Pharmaceuticals",
    "Retailing",
    "Semiconductors",
    "Software & Services",
    "Telecommunication",
    "Transportation",
    "Tobacco",
    "Textiles & Apparel",
    "Paper & Forest Products",
];

const PRODUCT_MATERIALS: &[&str] = &[
    "Steel", "Oak", "Carbon", "Ceramic", "Leather", "Bamboo", "Titanium", "Copper", "Walnut",
    "Granite", "Wool", "Linen", "Aluminum", "Glass", "Marble", "Cotton",
];

const PRODUCT_NOUNS: &[&str] = &[
    "Desk",
    "Chair",
    "Lamp",
    "Keyboard",
    "Monitor",
    "Bottle",
    "Backpack",
    "Notebook",
    "Speaker",
    "Kettle",
    "Blender",
    "Router",
    "Camera",
    "Drone",
    "Watch",
    "Headphones",
    "Charger",
    "Tablet",
    "Printer",
    "Scanner",
];

const JOB_TITLES: &[&str] = &[
    "Account Executive",
    "Software Engineer",
    "Data Analyst",
    "Product Manager",
    "Sales Director",
    "Marketing Specialist",
    "Operations Manager",
    "Financial Analyst",
    "Customer Success Manager",
    "VP of Engineering",
    "Chief Technology Officer",
    "Business Development Rep",
    "Solutions Architect",
    "Support Engineer",
    "Research Scientist",
    "Recruiter",
    "Controller",
    "Designer",
];

const STREET_NAMES: &[&str] = &[
    "Main",
    "Oak",
    "Maple",
    "Cedar",
    "Pine",
    "Elm",
    "Washington",
    "Lincoln",
    "Park",
    "Lakeview",
    "Sunset",
    "Riverside",
    "Hillcrest",
    "Franklin",
    "Highland",
    "Jefferson",
];

const STREET_KINDS: &[&str] = &["St", "Ave", "Blvd", "Rd", "Ln", "Dr", "Way", "Ct"];

const EMAIL_DOMAINS: &[&str] = &["example.com", "mail.net", "corp.io", "inbox.org", "company.co"];

/// An infinite, deterministic family of entity strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Company names ("Global Dynamics Inc").
    Company,
    /// Person full names ("Mary Johnson").
    Person,
    /// City names ("Lake Haven", "New Ridgefield").
    City,
    /// Email addresses derived from person names.
    Email,
    /// Product names ("Carbon Desk 210").
    Product,
    /// Industry sectors (finite list, sub-numbered past the end).
    Sector,
    /// Stock tickers (base-26 codes).
    Ticker,
    /// ISO dates walking forward from 2015-01-01.
    Date,
    /// Zero-padded numeric identifiers.
    NumericId,
    /// Hex identifiers (UUID-ish).
    HexId,
    /// Phone numbers.
    Phone,
    /// Street addresses ("742 Maple Ave").
    Street,
    /// Job titles (finite list, sub-numbered).
    JobTitle,
}

/// Deterministic pick from a pool with injective overflow: index `i` maps
/// to `pool[i % len]` plus a numeric disambiguator for each wrap-around.
fn pick<'a>(pool: &'a [&'a str], i: u64) -> (&'a str, u64) {
    (pool[(i % pool.len() as u64) as usize], i / pool.len() as u64)
}

impl Domain {
    /// All domains (used by generators to diversify corpora).
    pub fn all() -> &'static [Domain] {
        &[
            Domain::Company,
            Domain::Person,
            Domain::City,
            Domain::Email,
            Domain::Product,
            Domain::Sector,
            Domain::Ticker,
            Domain::Date,
            Domain::NumericId,
            Domain::HexId,
            Domain::Phone,
            Domain::Street,
            Domain::JobTitle,
        ]
    }

    /// Short label used in generated column names.
    pub fn label(&self) -> &'static str {
        match self {
            Domain::Company => "company",
            Domain::Person => "person",
            Domain::City => "city",
            Domain::Email => "email",
            Domain::Product => "product",
            Domain::Sector => "sector",
            Domain::Ticker => "ticker",
            Domain::Date => "date",
            Domain::NumericId => "id",
            Domain::HexId => "uid",
            Domain::Phone => "phone",
            Domain::Street => "address",
            Domain::JobTitle => "title",
        }
    }

    /// The `i`-th entity of this domain. Injective in `i`: distinct indices
    /// always produce distinct strings.
    pub fn value(&self, i: u64) -> String {
        match self {
            Domain::Company => {
                let (adj, rest) = pick(ADJECTIVES, i);
                let (noun, rest) = pick(COMPANY_NOUNS, rest);
                let (suffix, wrap) = pick(COMPANY_SUFFIXES, rest);
                if wrap == 0 {
                    format!("{adj} {noun} {suffix}")
                } else {
                    format!("{adj} {noun} {wrap} {suffix}")
                }
            }
            Domain::Person => {
                let (first, rest) = pick(FIRST_NAMES, i);
                let (last, wrap) = pick(LAST_NAMES, rest);
                if wrap == 0 {
                    format!("{first} {last}")
                } else {
                    // Middle initial cycles keep names plausible yet unique.
                    let initial = (b'A' + (wrap % 26) as u8) as char;
                    let gen = wrap / 26;
                    if gen == 0 {
                        format!("{first} {initial}. {last}")
                    } else {
                        format!("{first} {initial}. {last} {}", roman(gen + 1))
                    }
                }
            }
            Domain::City => {
                let (prefix, rest) = pick(CITY_PREFIXES, i);
                let (stem, wrap) = pick(CITY_STEMS, rest);
                if wrap == 0 {
                    format!("{prefix} {stem}")
                } else {
                    format!("{prefix} {stem} {wrap}")
                }
            }
            Domain::Email => {
                let (first, rest) = pick(FIRST_NAMES, i);
                let (last, rest) = pick(LAST_NAMES, rest);
                let (domain, wrap) = pick(EMAIL_DOMAINS, rest);
                if wrap == 0 {
                    format!("{}.{}@{}", first.to_lowercase(), last.to_lowercase(), domain)
                } else {
                    format!("{}.{}{}@{}", first.to_lowercase(), last.to_lowercase(), wrap, domain)
                }
            }
            Domain::Product => {
                let (material, rest) = pick(PRODUCT_MATERIALS, i);
                let (noun, wrap) = pick(PRODUCT_NOUNS, rest);
                format!("{material} {noun} {}", 100 + wrap)
            }
            Domain::Sector => {
                let (sector, wrap) = pick(SECTORS, i);
                if wrap == 0 {
                    sector.to_string()
                } else {
                    format!("{sector} {wrap}")
                }
            }
            Domain::Ticker => {
                // Base-26 code, 2+ letters, offset to avoid "AA" collisions
                // with short English words dominating.
                let mut n = i + 26;
                let mut code = String::new();
                while n > 0 {
                    code.push((b'A' + (n % 26) as u8) as char);
                    n /= 26;
                }
                code
            }
            Domain::Date => {
                // Days since 2015-01-01, rendered ISO. Simple calendar walk
                // (civil-from-days algorithm).
                let (y, m, d) = civil_from_days(16_436 + i as i64); // 2015-01-01
                format!("{y:04}-{m:02}-{d:02}")
            }
            Domain::NumericId => format!("{i:06}"),
            Domain::HexId => {
                let h = mix64(combine64(0x0048_4558, i));
                format!("{h:016x}")
            }
            Domain::Phone => {
                let h = mix64(combine64(0x5048, i));
                let area = 200 + h % 700;
                let exchange = 100 + (h >> 10) % 900;
                let line = i % 10_000;
                let ext = i / 10_000;
                if ext == 0 {
                    format!("({area:03}) {exchange:03}-{line:04}")
                } else {
                    format!("({area:03}) {exchange:03}-{line:04} x{ext}")
                }
            }
            Domain::Street => {
                let (name, rest) = pick(STREET_NAMES, i);
                let (kind, wrap) = pick(STREET_KINDS, rest);
                format!("{} {name} {kind}", 100 + wrap * 16 + (mix64(i) % 16))
            }
            Domain::JobTitle => {
                let (title, wrap) = pick(JOB_TITLES, i);
                if wrap == 0 {
                    title.to_string()
                } else {
                    format!("{title} {wrap}")
                }
            }
        }
    }

    /// Whether a format variant is meaningful for this domain.
    pub fn variants(&self) -> &'static [Variant] {
        match self {
            Domain::Date => &[Variant::Identity, Variant::DateUs, Variant::DateCompact],
            Domain::NumericId => {
                &[Variant::Identity, Variant::StripZeros, Variant::Prefixed("ID-")]
            }
            Domain::Ticker | Domain::HexId => &[Variant::Identity, Variant::Lower],
            Domain::Phone => &[Variant::Identity, Variant::DigitsOnly],
            _ => &[Variant::Identity, Variant::Upper, Variant::Lower, Variant::StripPunct],
        }
    }
}

/// A formatting transformation applied uniformly to a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Leave values as generated.
    Identity,
    /// Uppercase.
    Upper,
    /// Lowercase.
    Lower,
    /// Remove punctuation (keep spaces).
    StripPunct,
    /// ISO date → US `MM/DD/YYYY`.
    DateUs,
    /// ISO date → compact `YYYYMMDD`.
    DateCompact,
    /// Strip leading zeros from digit runs.
    StripZeros,
    /// Keep only digits (phone numbers).
    DigitsOnly,
    /// Prepend a code prefix.
    Prefixed(&'static str),
}

impl Variant {
    /// Apply to one value.
    pub fn apply(&self, s: &str) -> String {
        match self {
            Variant::Identity => s.to_string(),
            Variant::Upper => s.to_uppercase(),
            Variant::Lower => s.to_lowercase(),
            Variant::StripPunct => {
                s.chars().filter(|c| c.is_alphanumeric() || c.is_whitespace()).collect()
            }
            Variant::DateUs => {
                // "YYYY-MM-DD" -> "MM/DD/YYYY"; non-dates pass through.
                let parts: Vec<&str> = s.split('-').collect();
                if parts.len() == 3 {
                    format!("{}/{}/{}", parts[1], parts[2], parts[0])
                } else {
                    s.to_string()
                }
            }
            Variant::DateCompact => s.chars().filter(|c| c.is_ascii_digit()).collect(),
            Variant::StripZeros => {
                let trimmed = s.trim_start_matches('0');
                if trimmed.is_empty() {
                    "0".to_string()
                } else {
                    trimmed.to_string()
                }
            }
            Variant::DigitsOnly => s.chars().filter(|c| c.is_ascii_digit()).collect(),
            Variant::Prefixed(p) => format!("{p}{s}"),
        }
    }

    /// Whether this variant changes the bytes of typical values (used by
    /// generators to count how many *semantic* pairs they planted).
    pub fn is_semantic(&self) -> bool {
        !matches!(self, Variant::Identity)
    }
}

/// Roman numerals for name generations (II, III, ...).
fn roman(mut n: u64) -> String {
    const TABLE: &[(u64, &str)] = &[
        (1000, "M"),
        (900, "CM"),
        (500, "D"),
        (400, "CD"),
        (100, "C"),
        (90, "XC"),
        (50, "L"),
        (40, "XL"),
        (10, "X"),
        (9, "IX"),
        (5, "V"),
        (4, "IV"),
        (1, "I"),
    ];
    let mut out = String::new();
    for &(v, s) in TABLE {
        while n >= v {
            out.push_str(s);
            n -= v;
        }
    }
    out
}

/// Howard Hinnant's civil-from-days: days since 1970-01-01 → (y, m, d).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn values_are_injective() {
        for domain in Domain::all() {
            let mut seen = HashSet::new();
            for i in 0..5000u64 {
                let v = domain.value(i);
                assert!(seen.insert(v.clone()), "{domain:?} repeats '{v}' at i={i}");
            }
        }
    }

    #[test]
    fn values_are_deterministic() {
        assert_eq!(Domain::Company.value(42), Domain::Company.value(42));
        assert_ne!(Domain::Company.value(1), Domain::Company.value(2));
    }

    #[test]
    fn dates_are_valid_iso() {
        for i in [0u64, 1, 100, 365, 366, 10_000] {
            let d = Domain::Date.value(i);
            assert_eq!(d.len(), 10, "bad date '{d}'");
            let parts: Vec<&str> = d.split('-').collect();
            assert_eq!(parts.len(), 3);
            let m: u32 = parts[1].parse().unwrap();
            let day: u32 = parts[2].parse().unwrap();
            assert!((1..=12).contains(&m));
            assert!((1..=31).contains(&day));
        }
        assert_eq!(Domain::Date.value(0), "2015-01-01");
    }

    #[test]
    fn variant_applications() {
        assert_eq!(Variant::Upper.apply("Acme Inc"), "ACME INC");
        assert_eq!(Variant::StripPunct.apply("Acme, Inc."), "Acme Inc");
        assert_eq!(Variant::DateUs.apply("2020-01-15"), "01/15/2020");
        assert_eq!(Variant::DateCompact.apply("2020-01-15"), "20200115");
        assert_eq!(Variant::StripZeros.apply("000420"), "420");
        assert_eq!(Variant::StripZeros.apply("0000"), "0");
        assert_eq!(Variant::DigitsOnly.apply("(555) 123-4567"), "5551234567");
        assert_eq!(Variant::Prefixed("ID-").apply("42"), "ID-42");
    }

    #[test]
    fn variants_preserve_injectivity_for_their_domains() {
        for domain in Domain::all() {
            for variant in domain.variants() {
                let mut seen = HashSet::new();
                for i in 0..2000u64 {
                    let v = variant.apply(&domain.value(i));
                    assert!(seen.insert(v.clone()), "{domain:?}/{variant:?} collides on '{v}'");
                }
            }
        }
    }

    #[test]
    fn variant_keeps_alphanum_key_alignment() {
        use wg_store::{Column, KeyNorm};
        // A variant column must still join with the identity column under
        // AlphaNum normalization — this is the semantic-join ground truth.
        for domain in [Domain::Company, Domain::Person, Domain::City] {
            for variant in domain.variants() {
                let base: Vec<String> = (0..50).map(|i| domain.value(i)).collect();
                let varied: Vec<String> = base.iter().map(|s| variant.apply(s)).collect();
                let a = Column::text("a", base);
                let b = Column::text("b", varied);
                let c = wg_store::containment(&a, &b, KeyNorm::AlphaNum);
                assert!(c > 0.99, "{domain:?}/{variant:?}: AlphaNum containment {c}");
            }
        }
    }

    #[test]
    fn roman_numerals() {
        assert_eq!(roman(2), "II");
        assert_eq!(roman(4), "IV");
        assert_eq!(roman(9), "IX");
        assert_eq!(roman(14), "XIV");
    }

    #[test]
    fn tickers_are_uppercase_letters() {
        for i in 0..100 {
            let t = Domain::Ticker.value(i);
            assert!(t.chars().all(|c| c.is_ascii_uppercase()), "bad ticker {t}");
            assert!(t.len() >= 2);
        }
    }
}
