//! D3L: five-evidence ensemble discovery (Bogatu et al., ICDE'20).
//!
//! Evidence types and their realizations here:
//!
//! | # | evidence                       | profile                  | index            |
//! |---|--------------------------------|--------------------------|------------------|
//! | i | column-name similarity         | name q-grams             | MinHash LSH      |
//! | ii| column extent (value) overlap  | distinct-value MinHash   | MinHash LSH      |
//! |iii| word-embedding similarity      | mean token embedding     | SimHash LSH      |
//! |iv | format representation          | pattern histogram        | MinHash LSH      |
//! | v | numeric domain distribution    | decile sketch            | scan over numerics |
//!
//! A query loads the column, computes all five profiles, pools candidates
//! from every index and ranks by the mean of the applicable per-evidence
//! similarities. The ensemble makes D3L stronger than Aurum on recall but
//! the slowest system end-to-end (paper Table 2): every query pays five
//! profile computations plus several index lookups.

use std::sync::Arc;

use wg_embed::{Aggregation, ColumnEmbedder, WebTableConfig, WebTableModel};
use wg_lsh::{LshParams, MinHashLshIndex, MinHasher, SimHashLshIndex};
use wg_profile::ColumnProfile;
use wg_store::{Column, ColumnRef, SampleSpec, StoreError, StoreResult, WarehouseBackend};
use wg_util::timing::Stopwatch;
use wg_util::{FxHashMap, FxHashSet, TopK};

/// Configuration for [`D3l`].
#[derive(Debug, Clone, Copy)]
pub struct D3lConfig {
    /// MinHash width shared by the name/content/format indexes.
    pub minhash_k: usize,
    /// MinHash LSH bands (rows = minhash_k / bands).
    pub bands: usize,
    /// Embedding dimension for evidence iii.
    pub embedding_dim: usize,
    /// SimHash threshold for the embedding index.
    pub embedding_threshold: f64,
    /// Numeric-sketch similarity floor for evidence v candidates.
    pub numeric_floor: f64,
    /// Sampling pushed into scans (D3L's published design profiles full
    /// data; default Full).
    pub sample: SampleSpec,
    /// Seed for hashing/embedding.
    pub seed: u64,
}

impl Default for D3lConfig {
    fn default() -> Self {
        Self {
            minhash_k: 128,
            bands: 32,
            embedding_dim: 128,
            embedding_threshold: 0.6,
            numeric_floor: 0.5,
            sample: SampleSpec::Full,
            seed: 0xD31,
        }
    }
}

/// Timing decomposition of one D3L query.
#[derive(Debug, Clone, Copy, Default)]
pub struct D3lQueryTiming {
    /// Real seconds loading the query column through the connector.
    pub load_secs: f64,
    /// Real seconds computing the five query profiles.
    pub profile_secs: f64,
    /// Real seconds in index lookups plus ensemble aggregation.
    pub lookup_secs: f64,
    /// Virtual network latency charged by the CDW for the load.
    pub virtual_load_secs: f64,
}

/// A ranked recommendation with its per-evidence scores.
#[derive(Debug, Clone)]
pub struct D3lHit {
    /// Candidate column.
    pub reference: ColumnRef,
    /// Aggregated (mean) similarity.
    pub score: f64,
    /// `(evidence label, similarity)` for the evidences that applied.
    pub evidence: Vec<(&'static str, f64)>,
}

/// The D3L system.
pub struct D3l {
    config: D3lConfig,
    hasher: MinHasher,
    embedder: ColumnEmbedder,
    profiles: Vec<ColumnProfile>,
    embeddings: Vec<Vec<f32>>,
    id_of: FxHashMap<ColumnRef, u32>,
    name_index: MinHashLshIndex,
    content_index: MinHashLshIndex,
    format_index: MinHashLshIndex,
    embedding_index: SimHashLshIndex,
    /// Ids of numeric columns (evidence v candidates).
    numeric_ids: Vec<u32>,
}

impl D3l {
    /// Index every column of the backend's warehouse.
    pub fn build(backend: &dyn WarehouseBackend, config: D3lConfig) -> StoreResult<D3l> {
        assert!(config.minhash_k % config.bands == 0, "bands must divide minhash_k");
        let rows = config.minhash_k / config.bands;
        let hasher = MinHasher::new(config.minhash_k, config.seed);
        // "Off-the-shelf NLP embeddings" flavor: uniform mean over distinct
        // values, own seed — deliberately not WarpGate's tuned setup.
        let model = WebTableModel::new(WebTableConfig {
            dim: config.embedding_dim,
            seed: config.seed ^ 0xE3B0,
            ..WebTableConfig::default()
        });
        let embedder = ColumnEmbedder::new(Arc::new(model), Aggregation::MeanDistinct);

        let mut d3l = D3l {
            hasher,
            embedder,
            profiles: Vec::new(),
            embeddings: Vec::new(),
            id_of: FxHashMap::default(),
            name_index: MinHashLshIndex::new(config.bands, rows),
            content_index: MinHashLshIndex::new(config.bands, rows),
            format_index: MinHashLshIndex::new(config.bands, rows),
            embedding_index: SimHashLshIndex::new(
                config.embedding_dim,
                LshParams::for_threshold(config.embedding_threshold, 128),
                config.seed ^ 0x51AE,
            ),
            numeric_ids: Vec::new(),
            config,
        };

        let refs: Vec<ColumnRef> =
            backend.list_tables()?.iter().flat_map(|m| m.column_refs()).collect();
        for r in refs {
            let column = backend.scan_column(&r, config.sample)?;
            d3l.insert_column(r, &column);
        }
        Ok(d3l)
    }

    fn insert_column(&mut self, r: ColumnRef, column: &Column) {
        let id = self.profiles.len() as u32;
        let profile = ColumnProfile::build(r.clone(), column, &self.hasher);
        let embedding = self.embedder.embed_column(column);

        self.name_index.insert(id, self.hasher.sign_strs(profile.name_grams.iter()));
        self.content_index.insert(id, profile.content_signature.clone());
        self.format_index.insert(id, self.hasher.sign_strs(profile.format.pattern_set()));
        self.embedding_index.insert(id, embedding.as_slice());
        if column.dtype().is_numeric() {
            self.numeric_ids.push(id);
        }
        self.id_of.insert(r, id);
        self.embeddings.push(embedding.0);
        self.profiles.push(profile);
    }

    /// The configuration used at build time.
    pub fn config(&self) -> &D3lConfig {
        &self.config
    }

    /// Number of indexed columns.
    pub fn num_columns(&self) -> usize {
        self.profiles.len()
    }

    /// Discovery query for a warehouse column: load → profile → ensemble.
    pub fn query(
        &self,
        backend: &dyn WarehouseBackend,
        query: &ColumnRef,
        k: usize,
    ) -> StoreResult<(Vec<D3lHit>, D3lQueryTiming)> {
        if !self.id_of.contains_key(query) {
            return Err(StoreError::NotFound(format!("column '{query}' not indexed")));
        }
        let mut timing = D3lQueryTiming::default();

        let costs_before = backend.costs();
        let sw = Stopwatch::start();
        let column = backend.scan_column(query, self.config.sample)?;
        timing.load_secs = sw.elapsed_secs();
        timing.virtual_load_secs = backend.costs().since(&costs_before).virtual_secs;

        let sw = Stopwatch::start();
        let q_profile = ColumnProfile::build(query.clone(), &column, &self.hasher);
        let q_embedding = self.embedder.embed_column(&column);
        timing.profile_secs = sw.elapsed_secs();

        let sw = Stopwatch::start();
        let hits = self.rank(query, &q_profile, &q_embedding.0, k);
        timing.lookup_secs = sw.elapsed_secs();
        Ok((hits, timing))
    }

    /// Ensemble candidate pooling + mean-similarity ranking.
    fn rank(
        &self,
        query: &ColumnRef,
        q_profile: &ColumnProfile,
        q_embedding: &[f32],
        k: usize,
    ) -> Vec<D3lHit> {
        let name_sig = self.hasher.sign_strs(q_profile.name_grams.iter());
        let format_sig = self.hasher.sign_strs(q_profile.format.pattern_set());

        let mut candidates: FxHashSet<u32> = FxHashSet::default();
        candidates.extend(self.name_index.candidates(&name_sig));
        candidates.extend(self.content_index.candidates(&q_profile.content_signature));
        candidates.extend(self.format_index.candidates(&format_sig));
        if !q_embedding.iter().all(|&x| x == 0.0) {
            candidates.extend(self.embedding_index.candidates(q_embedding));
        }
        if !q_profile.numeric.is_empty() {
            for &id in &self.numeric_ids {
                if q_profile.numeric.similarity(&self.profiles[id as usize].numeric)
                    >= self.config.numeric_floor
                {
                    candidates.insert(id);
                }
            }
        }

        let mut topk = TopK::new(k);
        for id in candidates {
            let candidate = &self.profiles[id as usize];
            if candidate.reference.same_table(query) {
                continue;
            }
            let mut evidence: Vec<(&'static str, f64)> = Vec::with_capacity(5);
            evidence.push(("name", q_profile.name_similarity(candidate)));
            evidence.push(("content", q_profile.content_similarity(candidate)));
            evidence.push(("format", q_profile.format.similarity(&candidate.format)));
            let emb = cosine(q_embedding, &self.embeddings[id as usize]).max(0.0) as f64;
            evidence.push(("embedding", emb));
            if !q_profile.numeric.is_empty() && !candidate.numeric.is_empty() {
                evidence.push(("numeric", q_profile.numeric.similarity(&candidate.numeric)));
            }
            let score = evidence.iter().map(|(_, s)| s).sum::<f64>() / evidence.len() as f64;
            topk.push(score, id);
        }
        topk.into_sorted()
            .into_iter()
            .map(|(score, id)| {
                let candidate = &self.profiles[id as usize];
                let mut evidence: Vec<(&'static str, f64)> = vec![
                    ("name", q_profile.name_similarity(candidate)),
                    ("content", q_profile.content_similarity(candidate)),
                    ("format", q_profile.format.similarity(&candidate.format)),
                    (
                        "embedding",
                        cosine(q_embedding, &self.embeddings[id as usize]).max(0.0) as f64,
                    ),
                ];
                if !q_profile.numeric.is_empty() && !candidate.numeric.is_empty() {
                    evidence.push(("numeric", q_profile.numeric.similarity(&candidate.numeric)));
                }
                D3lHit { reference: candidate.reference.clone(), score, evidence }
            })
            .collect()
    }
}

#[inline]
fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let mut dot = 0.0f32;
    let mut na = 0.0f32;
    let mut nb = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    let denom = (na * nb).sqrt();
    if denom <= f32::MIN_POSITIVE {
        0.0
    } else {
        (dot / denom).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_store::{CdwConfig, CdwConnector, Column, Database, Table, Warehouse};

    fn connector() -> CdwConnector {
        let mut w = Warehouse::new("w");
        let mut db = Database::new("db");
        db.add_table(
            Table::new(
                "accounts",
                vec![Column::text(
                    "company",
                    (0..60).map(|i| format!("Company {i}")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
        db.add_table(
            Table::new(
                "industries",
                // Format variant of the same entities.
                vec![Column::text(
                    "company_name",
                    (0..60).map(|i| format!("COMPANY {i}")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
        db.add_table(
            Table::new(
                "cities",
                vec![Column::text(
                    "city",
                    (0..60).map(|i| format!("City-{i}")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
        db.add_table(
            Table::new(
                "metrics",
                vec![
                    Column::floats("revenue", (0..60).map(|i| 1000.0 + i as f64).collect()),
                    Column::floats("income", (0..60).map(|i| 1010.0 + i as f64).collect()),
                ],
            )
            .unwrap(),
        );
        w.add_database(db);
        CdwConnector::new(w, CdwConfig::free())
    }

    #[test]
    fn finds_semantic_variant_via_ensemble() {
        let c = connector();
        let d3l = D3l::build(&c, D3lConfig::default()).unwrap();
        let (hits, _) = d3l.query(&c, &ColumnRef::new("db", "accounts", "company"), 3).unwrap();
        assert!(!hits.is_empty());
        assert_eq!(
            hits[0].reference,
            ColumnRef::new("db", "industries", "company_name"),
            "ensemble should surface the format variant: {hits:?}"
        );
        // Evidence should include the embedding signal.
        assert!(hits[0].evidence.iter().any(|(l, s)| *l == "embedding" && *s > 0.3));
    }

    #[test]
    fn numeric_evidence_links_numeric_columns() {
        let c = connector();
        let d3l = D3l::build(&c, D3lConfig::default()).unwrap();
        let (hits, _) = d3l.query(&c, &ColumnRef::new("db", "metrics", "revenue"), 3).unwrap();
        // income is in the same table (excluded); there is no other numeric
        // column, so numeric evidence alone must not invent cross-table
        // hits with high scores.
        for h in &hits {
            assert!(h.score < 0.9, "spurious numeric hit: {h:?}");
        }
    }

    #[test]
    fn excludes_same_table() {
        let c = connector();
        let d3l = D3l::build(&c, D3lConfig::default()).unwrap();
        let q = ColumnRef::new("db", "metrics", "revenue");
        let (hits, _) = d3l.query(&c, &q, 10).unwrap();
        for h in hits {
            assert!(!h.reference.same_table(&q));
        }
    }

    #[test]
    fn timing_fields_populated() {
        let c = connector();
        let d3l = D3l::build(&c, D3lConfig::default()).unwrap();
        let (_, t) = d3l.query(&c, &ColumnRef::new("db", "accounts", "company"), 3).unwrap();
        assert!(t.load_secs > 0.0);
        assert!(t.profile_secs > 0.0);
        assert!(t.lookup_secs > 0.0);
    }

    #[test]
    fn unknown_query_errors() {
        let c = connector();
        let d3l = D3l::build(&c, D3lConfig::default()).unwrap();
        assert!(d3l.query(&c, &ColumnRef::new("db", "nope", "x"), 3).is_err());
    }

    #[test]
    fn scores_sorted_descending() {
        let c = connector();
        let d3l = D3l::build(&c, D3lConfig::default()).unwrap();
        let (hits, _) = d3l.query(&c, &ColumnRef::new("db", "accounts", "company"), 10).unwrap();
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
