//! Baseline data discovery systems.
//!
//! The paper evaluates WarpGate against two prototypes that "report on
//! real-world data discovery" (§4.2):
//!
//! * [`aurum`] — **Aurum** (Fernandez et al., ICDE'18): profiles every
//!   column, links profiles whose *syntactic* similarity crosses a
//!   threshold into an enterprise knowledge graph, and answers discovery
//!   queries from the graph. Very fast at query time (a graph lookup — the
//!   paper's Table 2 shows 0.18 s / 0.03 s) but blind to joins whose value
//!   sets overlap little as stored (formatting variants, FK⊂PK asymmetry).
//!   Aurum has no native top-k: we truncate its neighbor set by edge weight,
//!   exactly as the paper had to.
//! * [`d3l`] — **D3L** (Bogatu et al., ICDE'20): an ensemble of five
//!   evidence types — (i) column-name q-grams, (ii) value overlap,
//!   (iii) word-embedding similarity, (iv) format patterns, (v) numeric
//!   domain distributions — each with its own LSH index, aggregated into a
//!   ranked top-k. More effective than Aurum, and the slowest of the three
//!   systems because every query computes all five profiles.

pub mod aurum;
pub mod d3l;

pub use aurum::{Aurum, AurumConfig};
pub use d3l::{D3l, D3lConfig};
