//! Aurum: profile columns, build an enterprise knowledge graph (EKG) of
//! syntactic relationships, answer discovery queries from the graph.
//!
//! Indexing: scan every column once (Aurum assumes a full pass — the very
//! assumption the paper challenges), MinHash the distinct values, and use a
//! banded MinHash LSH to find candidate pairs. An edge is drawn when the
//! estimated Jaccard crosses `content_threshold`, or the column names'
//! q-gram Jaccard crosses `name_threshold` (schema edges).
//!
//! Querying never touches the warehouse again: it is a neighbor lookup in
//! the in-memory graph — which is why Aurum is by far the fastest system in
//! Table 2 and also why its recall suffers on semantic joins: containment-
//! style FK⊂PK pairs have low Jaccard, and format variants share almost no
//! exact values.

use wg_lsh::{MinHashLshIndex, MinHasher};
use wg_profile::ColumnProfile;
use wg_store::{ColumnRef, SampleSpec, StoreError, StoreResult, WarehouseBackend};
use wg_util::FxHashMap;

/// Configuration for [`Aurum`].
#[derive(Debug, Clone, Copy)]
pub struct AurumConfig {
    /// MinHash signature width.
    pub minhash_k: usize,
    /// LSH banding for candidate generation (bands × rows = minhash_k).
    pub bands: usize,
    /// Estimated-Jaccard threshold for content edges.
    pub content_threshold: f64,
    /// Name q-gram Jaccard threshold for schema edges. Values above 1.0
    /// disable schema edges entirely — the default, matching the content-
    /// driven Aurum configuration the paper evaluates (its Figure 4(c)
    /// shows Aurum missing same-named PK/FK pairs that any name matcher
    /// would catch; name evidence is what *D3L* adds).
    pub name_threshold: f64,
    /// Sampling pushed into the indexing scan. Aurum's published design
    /// reads everything: the default is [`SampleSpec::Full`].
    pub sample: SampleSpec,
    /// Seed for the MinHash permutations.
    pub seed: u64,
}

impl Default for AurumConfig {
    fn default() -> Self {
        Self {
            minhash_k: 128,
            bands: 32,
            content_threshold: 0.4,
            name_threshold: 1.1,
            sample: SampleSpec::Full,
            seed: 0xA0B1,
        }
    }
}

/// Kind of relationship stored on an EKG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Value-overlap (MinHash Jaccard) relationship.
    Content,
    /// Column-name similarity relationship.
    Schema,
}

/// One weighted edge of the EKG.
#[derive(Debug, Clone, Copy)]
struct Edge {
    to: u32,
    weight: f64,
    kind: EdgeKind,
}

/// The Aurum system: column profiles + enterprise knowledge graph.
pub struct Aurum {
    config: AurumConfig,
    profiles: Vec<ColumnProfile>,
    id_of: FxHashMap<ColumnRef, u32>,
    adjacency: Vec<Vec<Edge>>,
}

impl Aurum {
    /// Build the EKG over every column of the backend's warehouse. This is
    /// the expensive offline phase: one scan per column plus pairwise edge
    /// detection via MinHash LSH.
    pub fn build(backend: &dyn WarehouseBackend, config: AurumConfig) -> StoreResult<Aurum> {
        assert!(config.minhash_k % config.bands == 0, "bands must divide minhash_k");
        let hasher = MinHasher::new(config.minhash_k, config.seed);
        let refs: Vec<ColumnRef> =
            backend.list_tables()?.iter().flat_map(|m| m.column_refs()).collect();

        let mut profiles = Vec::with_capacity(refs.len());
        let mut id_of = FxHashMap::default();
        let mut lsh = MinHashLshIndex::new(config.bands, config.minhash_k / config.bands);
        for (id, r) in refs.iter().enumerate() {
            let column = backend.scan_column(r, config.sample)?;
            let profile = ColumnProfile::build(r.clone(), &column, &hasher);
            lsh.insert(id as u32, profile.content_signature.clone());
            id_of.insert(r.clone(), id as u32);
            profiles.push(profile);
        }

        // Content edges from LSH candidate pairs.
        let mut adjacency: Vec<Vec<Edge>> = vec![Vec::new(); profiles.len()];
        for (id, profile) in profiles.iter().enumerate() {
            for cand in lsh.candidates(&profile.content_signature) {
                let cand = cand as usize;
                if cand <= id {
                    continue; // each unordered pair once
                }
                let j = profile.content_similarity(&profiles[cand]);
                if j >= config.content_threshold {
                    adjacency[id].push(Edge {
                        to: cand as u32,
                        weight: j,
                        kind: EdgeKind::Content,
                    });
                    adjacency[cand].push(Edge {
                        to: id as u32,
                        weight: j,
                        kind: EdgeKind::Content,
                    });
                }
            }
        }
        // Schema (name) edges (disabled by default): names are tiny, brute
        // force is fine and is what Aurum's schema-similarity pass amounts to.
        for id in 0..if config.name_threshold <= 1.0 { profiles.len() } else { 0 } {
            for other in (id + 1)..profiles.len() {
                let s = profiles[id].name_similarity(&profiles[other]);
                if s >= config.name_threshold {
                    let already = adjacency[id].iter().any(|e| e.to == other as u32);
                    if !already {
                        adjacency[id].push(Edge {
                            to: other as u32,
                            weight: s,
                            kind: EdgeKind::Schema,
                        });
                        adjacency[other].push(Edge {
                            to: id as u32,
                            weight: s,
                            kind: EdgeKind::Schema,
                        });
                    }
                }
            }
        }
        for edges in &mut adjacency {
            edges.sort_by(|a, b| b.weight.partial_cmp(&a.weight).unwrap().then(a.to.cmp(&b.to)));
        }
        Ok(Aurum { config, profiles, id_of, adjacency })
    }

    /// The configuration used at build time.
    pub fn config(&self) -> &AurumConfig {
        &self.config
    }

    /// Number of profiled columns.
    pub fn num_columns(&self) -> usize {
        self.profiles.len()
    }

    /// Total number of (undirected) edges in the EKG.
    pub fn num_edges(&self) -> usize {
        self.adjacency.iter().map(|e| e.len()).sum::<usize>() / 2
    }

    /// Undirected edge counts by kind: `(content, schema)`.
    pub fn edge_counts(&self) -> (usize, usize) {
        let mut content = 0;
        let mut schema = 0;
        for edges in &self.adjacency {
            for e in edges {
                match e.kind {
                    EdgeKind::Content => content += 1,
                    EdgeKind::Schema => schema += 1,
                }
            }
        }
        (content / 2, schema / 2)
    }

    /// Discovery query: up to `k` graph neighbors of the query column,
    /// best edge weight first, never from the query's own table. Pure
    /// in-memory lookup — no warehouse access.
    pub fn neighbors(&self, query: &ColumnRef, k: usize) -> StoreResult<Vec<(ColumnRef, f64)>> {
        let &id = self
            .id_of
            .get(query)
            .ok_or_else(|| StoreError::NotFound(format!("column '{query}' not indexed")))?;
        Ok(self.adjacency[id as usize]
            .iter()
            .filter(|e| !self.profiles[e.to as usize].reference.same_table(query))
            .take(k)
            .map(|e| (self.profiles[e.to as usize].reference.clone(), e.weight))
            .collect())
    }

    /// Two-hop join-path discovery: columns reachable through one
    /// intermediate column, with the bottleneck edge weight. An Aurum-style
    /// graph traversal the embedding systems cannot express.
    pub fn two_hop_paths(
        &self,
        query: &ColumnRef,
        k: usize,
    ) -> StoreResult<Vec<(ColumnRef, ColumnRef, f64)>> {
        let &id = self
            .id_of
            .get(query)
            .ok_or_else(|| StoreError::NotFound(format!("column '{query}' not indexed")))?;
        let mut out: Vec<(ColumnRef, ColumnRef, f64)> = Vec::new();
        for first in &self.adjacency[id as usize] {
            for second in &self.adjacency[first.to as usize] {
                if second.to == id {
                    continue;
                }
                let dest = &self.profiles[second.to as usize].reference;
                if dest.same_table(query) {
                    continue;
                }
                out.push((
                    self.profiles[first.to as usize].reference.clone(),
                    dest.clone(),
                    first.weight.min(second.weight),
                ));
            }
        }
        out.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap().then_with(|| a.1.cmp(&b.1)));
        out.dedup_by(|a, b| a.1 == b.1);
        out.truncate(k);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_store::{CdwConfig, CdwConnector, Column, Database, Table, Warehouse};

    fn connector() -> CdwConnector {
        let mut w = Warehouse::new("w");
        let mut db = Database::new("db");
        db.add_table(
            Table::new(
                "users",
                vec![
                    Column::text(
                        "email",
                        (0..50).map(|i| format!("user{i}@x.com")).collect::<Vec<_>>(),
                    ),
                    Column::ints("age", (20..70).collect()),
                ],
            )
            .unwrap(),
        );
        db.add_table(
            Table::new(
                "contacts",
                // High overlap with users.email.
                vec![Column::text(
                    "email",
                    (0..45).map(|i| format!("user{i}@x.com")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
        db.add_table(
            Table::new(
                "products",
                vec![Column::text(
                    "sku",
                    (0..50).map(|i| format!("SKU-{i:04}")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
        w.add_database(db);
        CdwConnector::new(w, CdwConfig::free())
    }

    #[test]
    fn builds_content_edges_for_overlapping_columns() {
        let aurum = Aurum::build(&connector(), AurumConfig::default()).unwrap();
        assert_eq!(aurum.num_columns(), 4);
        let q = ColumnRef::new("db", "users", "email");
        let hits = aurum.neighbors(&q, 5).unwrap();
        assert!(!hits.is_empty(), "overlapping email columns must be linked");
        assert_eq!(hits[0].0, ColumnRef::new("db", "contacts", "email"));
        assert!(hits[0].1 > 0.8);
    }

    #[test]
    fn no_edge_for_disjoint_columns() {
        let aurum = Aurum::build(&connector(), AurumConfig::default()).unwrap();
        let q = ColumnRef::new("db", "products", "sku");
        let hits = aurum.neighbors(&q, 5).unwrap();
        // sku overlaps nothing; only name edges could exist and there is no
        // similarly-named column.
        assert!(hits.is_empty(), "unexpected neighbors: {hits:?}");
    }

    #[test]
    fn neighbors_exclude_own_table() {
        let aurum = Aurum::build(&connector(), AurumConfig::default()).unwrap();
        let q = ColumnRef::new("db", "users", "email");
        for (r, _) in aurum.neighbors(&q, 10).unwrap() {
            assert!(!(r.database == "db" && r.table == "users"));
        }
    }

    #[test]
    fn unknown_query_errors() {
        let aurum = Aurum::build(&connector(), AurumConfig::default()).unwrap();
        assert!(aurum.neighbors(&ColumnRef::new("db", "nope", "x"), 3).is_err());
    }

    #[test]
    fn misses_format_variant_joins() {
        // The blind spot the paper exploits: same entities, different
        // formatting -> near-zero exact-value overlap -> no Aurum edge.
        let mut w = Warehouse::new("w");
        let mut db = Database::new("db");
        db.add_table(
            Table::new(
                "a",
                vec![Column::text(
                    "name",
                    (0..40).map(|i| format!("Company {i}")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
        db.add_table(
            Table::new(
                "b",
                vec![Column::text(
                    "firm",
                    (0..40).map(|i| format!("COMPANY {i} INC")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
        w.add_database(db);
        let aurum =
            Aurum::build(&CdwConnector::new(w, CdwConfig::free()), AurumConfig::default()).unwrap();
        let hits = aurum.neighbors(&ColumnRef::new("db", "a", "name"), 5).unwrap();
        assert!(hits.is_empty(), "Aurum should miss format-variant joins: {hits:?}");
    }

    #[test]
    fn low_jaccard_fk_pk_is_missed() {
        // FK of 10 values inside PK of 500: containment 1.0 but Jaccard
        // 0.02 — below any reasonable threshold.
        let mut w = Warehouse::new("w");
        let mut db = Database::new("db");
        db.add_table(
            Table::new(
                "dim",
                vec![Column::text("id", (0..500).map(|i| format!("id{i}")).collect::<Vec<_>>())],
            )
            .unwrap(),
        );
        db.add_table(
            Table::new(
                "fact",
                vec![Column::text(
                    "dim_ref",
                    (0..10).map(|i| format!("id{i}")).collect::<Vec<_>>(),
                )],
            )
            .unwrap(),
        );
        w.add_database(db);
        let aurum =
            Aurum::build(&CdwConnector::new(w, CdwConfig::free()), AurumConfig::default()).unwrap();
        let hits = aurum.neighbors(&ColumnRef::new("db", "fact", "dim_ref"), 5).unwrap();
        assert!(
            hits.iter().all(|(_, w)| *w < 0.5),
            "FK⊂PK should not form a strong content edge: {hits:?}"
        );
    }

    #[test]
    fn edge_counts_split_by_kind() {
        let aurum = Aurum::build(&connector(), AurumConfig::default()).unwrap();
        let (content, schema) = aurum.edge_counts();
        assert_eq!(content + schema, aurum.num_edges());
        assert!(content >= 1, "email overlap must create a content edge");
    }

    #[test]
    fn name_edges_link_similar_names() {
        let mut w = Warehouse::new("w");
        let mut db = Database::new("db");
        db.add_table(Table::new("t1", vec![Column::text("customer_id", ["a", "b"])]).unwrap());
        db.add_table(Table::new("t2", vec![Column::text("customer_id", ["zz", "qq"])]).unwrap());
        w.add_database(db);
        let config = AurumConfig { name_threshold: 0.8, ..AurumConfig::default() };
        let aurum = Aurum::build(&CdwConnector::new(w, CdwConfig::free()), config).unwrap();
        let hits = aurum.neighbors(&ColumnRef::new("db", "t1", "customer_id"), 5).unwrap();
        assert_eq!(hits.len(), 1, "name edge expected");
        // And with the default (schema edges disabled) there is no edge.
        let w2 = {
            let mut w = Warehouse::new("w");
            let mut db = Database::new("db");
            db.add_table(Table::new("t1", vec![Column::text("customer_id", ["a", "b"])]).unwrap());
            db.add_table(
                Table::new("t2", vec![Column::text("customer_id", ["zz", "qq"])]).unwrap(),
            );
            w.add_database(db);
            w
        };
        let aurum = Aurum::build(&CdwConnector::new(w2, CdwConfig::free()), AurumConfig::default())
            .unwrap();
        assert!(aurum.neighbors(&ColumnRef::new("db", "t1", "customer_id"), 5).unwrap().is_empty());
    }

    #[test]
    fn two_hop_paths_reach_transitive_columns() {
        let aurum = Aurum::build(&connector(), AurumConfig::default()).unwrap();
        let q = ColumnRef::new("db", "users", "email");
        // users.email -> contacts.email; contacts has no further edges, so
        // two-hop may be empty — but the call must not error and never
        // return the query itself.
        for (_, dest, _) in aurum.two_hop_paths(&q, 5).unwrap() {
            assert_ne!(dest, q);
        }
    }
}
