//! Columnar storage.
//!
//! Text columns are dictionary-encoded: the distinct strings live once in a
//! `dict` and rows are `u32` codes. This matters for this workload twice
//! over — (1) discovery corpora are dominated by low-cardinality string
//! columns, so memory drops sharply, and (2) profiling and embedding both
//! operate on *distinct values with multiplicities*, which the dictionary
//! provides for free instead of requiring a hash pass over millions of rows.

use wg_util::codec::{self, CodecError, CodecResult};
use wg_util::FxHashMap;

use crate::dtype::{self, DataType};
use crate::error::{StoreError, StoreResult};
use crate::value::{Value, ValueRef};

/// Sentinel code for NULL in dictionary-encoded text columns.
const NULL_CODE: u32 = u32::MAX;

/// A dictionary-encoded string column.
#[derive(Debug, Clone, PartialEq)]
pub struct TextColumn {
    /// Distinct values in first-seen order.
    dict: Vec<String>,
    /// Occurrences of each dictionary entry.
    counts: Vec<u32>,
    /// Per-row dictionary codes; `NULL_CODE` marks NULL.
    codes: Vec<u32>,
}

impl TextColumn {
    /// Build from row values, interning distinct strings.
    pub fn from_rows<I, S>(rows: I) -> Self
    where
        I: IntoIterator<Item = Option<S>>,
        S: AsRef<str>,
    {
        let mut dict: Vec<String> = Vec::new();
        let mut counts: Vec<u32> = Vec::new();
        let mut codes: Vec<u32> = Vec::new();
        let mut intern: FxHashMap<String, u32> = FxHashMap::default();
        for row in rows {
            match row {
                None => codes.push(NULL_CODE),
                Some(s) => {
                    let s = s.as_ref();
                    let code = match intern.get(s) {
                        Some(&c) => c,
                        None => {
                            let c = dict.len() as u32;
                            intern.insert(s.to_string(), c);
                            dict.push(s.to_string());
                            counts.push(0);
                            c
                        }
                    };
                    counts[code as usize] += 1;
                    codes.push(code);
                }
            }
        }
        Self { dict, counts, codes }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The distinct values, in first-seen order.
    pub fn dict(&self) -> &[String] {
        &self.dict
    }

    /// Occurrence count for each dictionary entry (parallel to [`dict`]).
    ///
    /// [`dict`]: TextColumn::dict
    pub fn dict_counts(&self) -> &[u32] {
        &self.counts
    }

    /// The per-row codes (`u32::MAX` = NULL).
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Value at `row`, or `None` for NULL.
    pub fn get(&self, row: usize) -> Option<&str> {
        let code = self.codes[row];
        if code == NULL_CODE {
            None
        } else {
            Some(&self.dict[code as usize])
        }
    }

    /// Number of distinct non-null values.
    pub fn distinct_count(&self) -> usize {
        self.dict.len()
    }

    fn null_count(&self) -> usize {
        self.codes.iter().filter(|&&c| c == NULL_CODE).count()
    }

    /// Re-intern after row selection so the dictionary only holds values
    /// that still occur (keeps sampled columns small).
    fn take(&self, idx: &[usize]) -> Self {
        Self::from_rows(idx.iter().map(|&i| self.get(i)))
    }
}

/// Physical storage for one column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Booleans with optional validity (true = present).
    Bool { values: Vec<bool>, validity: Option<Vec<bool>> },
    /// 64-bit integers with optional validity.
    Int { values: Vec<i64>, validity: Option<Vec<bool>> },
    /// 64-bit floats with optional validity.
    Float { values: Vec<f64>, validity: Option<Vec<bool>> },
    /// Dictionary-encoded text.
    Text(TextColumn),
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    name: String,
    data: ColumnData,
}

impl Column {
    /// Wrap pre-built storage.
    pub fn new(name: impl Into<String>, data: ColumnData) -> Self {
        Self { name: name.into(), data }
    }

    /// Non-null text column from anything string-like.
    pub fn text<I, S>(name: impl Into<String>, rows: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        Self::new(name, ColumnData::Text(TextColumn::from_rows(rows.into_iter().map(Some))))
    }

    /// Nullable text column.
    pub fn text_opt<I, S>(name: impl Into<String>, rows: I) -> Self
    where
        I: IntoIterator<Item = Option<S>>,
        S: AsRef<str>,
    {
        Self::new(name, ColumnData::Text(TextColumn::from_rows(rows)))
    }

    /// Non-null integer column.
    pub fn ints(name: impl Into<String>, values: Vec<i64>) -> Self {
        Self::new(name, ColumnData::Int { values, validity: None })
    }

    /// Non-null float column.
    pub fn floats(name: impl Into<String>, values: Vec<f64>) -> Self {
        Self::new(name, ColumnData::Float { values, validity: None })
    }

    /// Non-null boolean column.
    pub fn bools(name: impl Into<String>, values: Vec<bool>) -> Self {
        Self::new(name, ColumnData::Bool { values, validity: None })
    }

    /// Build a column from owned values, inferring the narrowest common
    /// type. Mixed numeric widens to float; any other mixture falls back to
    /// text (rendering each value).
    pub fn from_values(name: impl Into<String>, values: &[Value]) -> Self {
        let mut ty: Option<DataType> = None;
        for v in values {
            if let Some(t) = v.dtype() {
                ty = Some(match ty {
                    None => t,
                    Some(prev) => dtype::unify(prev, t),
                });
            }
        }
        let name = name.into();
        match ty {
            None => {
                // All NULL: store as all-null text.
                Self::text_opt(name, values.iter().map(|_| None::<&str>))
            }
            Some(DataType::Int) => {
                let mut out = Vec::with_capacity(values.len());
                let mut validity = Vec::with_capacity(values.len());
                let mut any_null = false;
                for v in values {
                    match v {
                        Value::Int(i) => {
                            out.push(*i);
                            validity.push(true);
                        }
                        _ => {
                            out.push(0);
                            validity.push(false);
                            any_null = true;
                        }
                    }
                }
                Self::new(
                    name,
                    ColumnData::Int { values: out, validity: any_null.then_some(validity) },
                )
            }
            Some(DataType::Float) => {
                let mut out = Vec::with_capacity(values.len());
                let mut validity = Vec::with_capacity(values.len());
                let mut any_null = false;
                for v in values {
                    match v {
                        Value::Int(i) => {
                            out.push(*i as f64);
                            validity.push(true);
                        }
                        Value::Float(x) => {
                            out.push(*x);
                            validity.push(true);
                        }
                        _ => {
                            out.push(0.0);
                            validity.push(false);
                            any_null = true;
                        }
                    }
                }
                Self::new(
                    name,
                    ColumnData::Float { values: out, validity: any_null.then_some(validity) },
                )
            }
            Some(DataType::Bool) => {
                let mut out = Vec::with_capacity(values.len());
                let mut validity = Vec::with_capacity(values.len());
                let mut any_null = false;
                for v in values {
                    match v {
                        Value::Bool(b) => {
                            out.push(*b);
                            validity.push(true);
                        }
                        _ => {
                            out.push(false);
                            validity.push(false);
                            any_null = true;
                        }
                    }
                }
                Self::new(
                    name,
                    ColumnData::Bool { values: out, validity: any_null.then_some(validity) },
                )
            }
            Some(DataType::Text) => Self::text_opt(
                name,
                values.iter().map(|v| if v.is_null() { None } else { Some(v.to_string()) }),
            ),
        }
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename, returning the column (builder style).
    pub fn renamed(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Physical storage.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Data type.
    pub fn dtype(&self) -> DataType {
        match &self.data {
            ColumnData::Bool { .. } => DataType::Bool,
            ColumnData::Int { .. } => DataType::Int,
            ColumnData::Float { .. } => DataType::Float,
            ColumnData::Text(_) => DataType::Text,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::Bool { values, .. } => values.len(),
            ColumnData::Int { values, .. } => values.len(),
            ColumnData::Float { values, .. } => values.len(),
            ColumnData::Text(t) => t.len(),
        }
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        match &self.data {
            ColumnData::Bool { validity, .. }
            | ColumnData::Int { validity, .. }
            | ColumnData::Float { validity, .. } => {
                validity.as_ref().map(|v| v.iter().filter(|&&ok| !ok).count()).unwrap_or(0)
            }
            ColumnData::Text(t) => t.null_count(),
        }
    }

    /// Cell at `row` as a borrowed value. Panics if out of range (like
    /// slice indexing); use [`Column::len`] to guard.
    pub fn get(&self, row: usize) -> ValueRef<'_> {
        match &self.data {
            ColumnData::Bool { values, validity } => {
                if valid(validity, row) {
                    ValueRef::Bool(values[row])
                } else {
                    ValueRef::Null
                }
            }
            ColumnData::Int { values, validity } => {
                if valid(validity, row) {
                    ValueRef::Int(values[row])
                } else {
                    ValueRef::Null
                }
            }
            ColumnData::Float { values, validity } => {
                if valid(validity, row) {
                    ValueRef::Float(values[row])
                } else {
                    ValueRef::Null
                }
            }
            ColumnData::Text(t) => match t.get(row) {
                Some(s) => ValueRef::Text(s),
                None => ValueRef::Null,
            },
        }
    }

    /// Iterate all cells.
    pub fn iter(&self) -> impl Iterator<Item = ValueRef<'_>> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Distinct non-null values rendered to strings, with multiplicities.
    ///
    /// For text columns this is a cheap view of the dictionary; for other
    /// types it is computed with one hashing pass. This is the input the
    /// embedding and profiling layers consume.
    pub fn value_counts(&self) -> Vec<(String, u32)> {
        match &self.data {
            ColumnData::Text(t) => {
                t.dict.iter().zip(t.counts.iter()).map(|(s, &c)| (s.clone(), c)).collect()
            }
            _ => {
                let mut map: FxHashMap<String, u32> = FxHashMap::default();
                let mut order: Vec<String> = Vec::new();
                for v in self.iter() {
                    if v.is_null() {
                        continue;
                    }
                    let s = v.to_string();
                    match map.get_mut(&s) {
                        Some(c) => *c += 1,
                        None => {
                            map.insert(s.clone(), 1);
                            order.push(s);
                        }
                    }
                }
                order
                    .into_iter()
                    .map(|s| {
                        let c = map[&s];
                        (s, c)
                    })
                    .collect()
            }
        }
    }

    /// Number of distinct non-null values.
    pub fn distinct_count(&self) -> usize {
        match &self.data {
            ColumnData::Text(t) => t.distinct_count(),
            _ => self.value_counts().len(),
        }
    }

    /// Select rows by index (allows repeats); reinterns text dictionaries.
    pub fn take(&self, idx: &[usize]) -> Column {
        let data = match &self.data {
            ColumnData::Bool { values, validity } => ColumnData::Bool {
                values: idx.iter().map(|&i| values[i]).collect(),
                validity: take_validity(validity, idx),
            },
            ColumnData::Int { values, validity } => ColumnData::Int {
                values: idx.iter().map(|&i| values[i]).collect(),
                validity: take_validity(validity, idx),
            },
            ColumnData::Float { values, validity } => ColumnData::Float {
                values: idx.iter().map(|&i| values[i]).collect(),
                validity: take_validity(validity, idx),
            },
            ColumnData::Text(t) => ColumnData::Text(t.take(idx)),
        };
        Column { name: self.name.clone(), data }
    }

    /// First `n` rows (fewer if the column is shorter).
    pub fn head(&self, n: usize) -> Column {
        let n = n.min(self.len());
        let idx: Vec<usize> = (0..n).collect();
        self.take(&idx)
    }

    /// Approximate in-memory footprint in bytes; this is also what the
    /// simulated CDW bills for when the column is scanned.
    pub fn approx_bytes(&self) -> usize {
        match &self.data {
            ColumnData::Bool { values, .. } => values.len(),
            ColumnData::Int { values, .. } => values.len() * 8,
            ColumnData::Float { values, .. } => values.len() * 8,
            ColumnData::Text(t) => {
                t.codes.len() * 4 + t.dict.iter().map(|s| s.len() + 8).sum::<usize>()
            }
        }
    }

    /// Encode to the wire format used by the simulated CDW and by index
    /// persistence.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        codec::put_str(buf, &self.name);
        codec::put_u8(buf, self.dtype().tag());
        match &self.data {
            ColumnData::Bool { values, validity } => {
                codec::put_len(buf, values.len());
                for &b in values {
                    codec::put_u8(buf, u8::from(b));
                }
                encode_validity(buf, validity);
            }
            ColumnData::Int { values, validity } => {
                codec::put_len(buf, values.len());
                for &i in values {
                    codec::put_i64(buf, i);
                }
                encode_validity(buf, validity);
            }
            ColumnData::Float { values, validity } => {
                codec::put_len(buf, values.len());
                for &x in values {
                    codec::put_f64(buf, x);
                }
                encode_validity(buf, validity);
            }
            ColumnData::Text(t) => {
                codec::put_len(buf, t.dict.len());
                for s in &t.dict {
                    codec::put_str(buf, s);
                }
                codec::put_u32_slice(buf, &t.counts);
                codec::put_u32_slice(buf, &t.codes);
            }
        }
    }

    /// Decode the wire format. Inverse of [`Column::encode`].
    pub fn decode(buf: &mut &[u8]) -> CodecResult<Column> {
        let name = codec::get_str(buf)?;
        let tag = codec::get_u8(buf)?;
        let dt = DataType::from_tag(tag)
            .ok_or_else(|| CodecError::Invalid(format!("bad dtype tag {tag}")))?;
        let data = match dt {
            DataType::Bool => {
                let len = codec::get_len(buf)?;
                let mut values = Vec::with_capacity(len);
                for _ in 0..len {
                    values.push(codec::get_u8(buf)? != 0);
                }
                ColumnData::Bool { values, validity: decode_validity(buf)? }
            }
            DataType::Int => {
                let len = codec::get_len(buf)?;
                let mut values = Vec::with_capacity(len);
                for _ in 0..len {
                    values.push(codec::get_i64(buf)?);
                }
                ColumnData::Int { values, validity: decode_validity(buf)? }
            }
            DataType::Float => {
                let len = codec::get_len(buf)?;
                let mut values = Vec::with_capacity(len);
                for _ in 0..len {
                    values.push(codec::get_f64(buf)?);
                }
                ColumnData::Float { values, validity: decode_validity(buf)? }
            }
            DataType::Text => {
                let dict_len = codec::get_len(buf)?;
                let mut dict = Vec::with_capacity(dict_len);
                for _ in 0..dict_len {
                    dict.push(codec::get_str(buf)?);
                }
                let counts = codec::get_u32_vec(buf)?;
                let codes = codec::get_u32_vec(buf)?;
                if counts.len() != dict.len() {
                    return Err(CodecError::Invalid("counts/dict length mismatch".into()));
                }
                for &c in &codes {
                    if c != NULL_CODE && c as usize >= dict.len() {
                        return Err(CodecError::Invalid(format!("code {c} out of range")));
                    }
                }
                ColumnData::Text(TextColumn { dict, counts, codes })
            }
        };
        Ok(Column { name, data })
    }

    /// Validate internal consistency; used by tests and after decoding
    /// untrusted bytes.
    pub fn check(&self) -> StoreResult<()> {
        if let ColumnData::Text(t) = &self.data {
            if t.counts.len() != t.dict.len() {
                return Err(StoreError::Schema("dict/counts length mismatch".into()));
            }
            let recount: u32 = t.counts.iter().sum();
            let nonnull = t.codes.iter().filter(|&&c| c != NULL_CODE).count() as u32;
            if recount != nonnull {
                return Err(StoreError::Schema("dict counts disagree with codes".into()));
            }
        }
        if let ColumnData::Int { values, validity: Some(v) } = &self.data {
            if values.len() != v.len() {
                return Err(StoreError::Schema("validity length mismatch".into()));
            }
        }
        Ok(())
    }
}

#[inline]
fn valid(validity: &Option<Vec<bool>>, row: usize) -> bool {
    validity.as_ref().map(|v| v[row]).unwrap_or(true)
}

fn take_validity(validity: &Option<Vec<bool>>, idx: &[usize]) -> Option<Vec<bool>> {
    validity.as_ref().map(|v| idx.iter().map(|&i| v[i]).collect())
}

fn encode_validity(buf: &mut Vec<u8>, validity: &Option<Vec<bool>>) {
    match validity {
        None => codec::put_u8(buf, 0),
        Some(v) => {
            codec::put_u8(buf, 1);
            codec::put_len(buf, v.len());
            for &b in v {
                codec::put_u8(buf, u8::from(b));
            }
        }
    }
}

fn decode_validity(buf: &mut &[u8]) -> CodecResult<Option<Vec<bool>>> {
    match codec::get_u8(buf)? {
        0 => Ok(None),
        1 => {
            let len = codec::get_len(buf)?;
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(codec::get_u8(buf)? != 0);
            }
            Ok(Some(v))
        }
        other => Err(CodecError::Invalid(format!("bad validity tag {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_column_interns() {
        let c = Column::text("city", ["NYC", "SF", "NYC", "NYC"]);
        let ColumnData::Text(t) = c.data() else { panic!("expected text") };
        assert_eq!(t.dict(), &["NYC".to_string(), "SF".to_string()]);
        assert_eq!(t.dict_counts(), &[3, 1]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.distinct_count(), 2);
        assert_eq!(c.get(1), ValueRef::Text("SF"));
        c.check().unwrap();
    }

    #[test]
    fn nullable_text() {
        let c = Column::text_opt("x", [Some("a"), None, Some("a")]);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.get(1), ValueRef::Null);
        assert_eq!(c.distinct_count(), 1);
    }

    #[test]
    fn from_values_infers_int() {
        let c = Column::from_values("n", &[Value::Int(1), Value::Null, Value::Int(3)]);
        assert_eq!(c.dtype(), DataType::Int);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.get(2), ValueRef::Int(3));
    }

    #[test]
    fn from_values_widens_to_float() {
        let c = Column::from_values("n", &[Value::Int(1), Value::Float(2.5)]);
        assert_eq!(c.dtype(), DataType::Float);
        assert_eq!(c.get(0), ValueRef::Float(1.0));
    }

    #[test]
    fn from_values_mixed_falls_back_to_text() {
        let c = Column::from_values("n", &[Value::Int(1), Value::Text("x".into())]);
        assert_eq!(c.dtype(), DataType::Text);
        assert_eq!(c.get(0), ValueRef::Text("1"));
    }

    #[test]
    fn from_values_all_null() {
        let c = Column::from_values("n", &[Value::Null, Value::Null]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.null_count(), 2);
    }

    #[test]
    fn value_counts_for_numeric() {
        let c = Column::ints("n", vec![3, 1, 3, 3]);
        let vc = c.value_counts();
        assert_eq!(vc, vec![("3".to_string(), 3), ("1".to_string(), 1)]);
    }

    #[test]
    fn take_reinterns_dictionary() {
        let c = Column::text("x", ["a", "b", "c", "a"]);
        let s = c.take(&[0, 3]);
        let ColumnData::Text(t) = s.data() else { panic!() };
        assert_eq!(t.dict(), &["a".to_string()]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn head_limits() {
        let c = Column::ints("n", (0..10).collect());
        assert_eq!(c.head(3).len(), 3);
        assert_eq!(c.head(100).len(), 10);
    }

    #[test]
    fn encode_decode_roundtrip_all_types() {
        let cols = vec![
            Column::text_opt("t", [Some("x"), None, Some("y")]),
            Column::ints("i", vec![1, -2, 3]),
            Column::from_values("f", &[Value::Float(0.5), Value::Null]),
            Column::bools("b", vec![true, false]),
        ];
        for c in cols {
            let mut buf = Vec::new();
            c.encode(&mut buf);
            let mut r = &buf[..];
            let d = Column::decode(&mut r).unwrap();
            assert_eq!(d, c);
            assert!(r.is_empty());
            d.check().unwrap();
        }
    }

    #[test]
    fn decode_rejects_out_of_range_code() {
        let c = Column::text("t", ["a"]);
        let mut buf = Vec::new();
        c.encode(&mut buf);
        // Corrupt the last 4 bytes (the single code) to a huge value.
        let n = buf.len();
        buf[n - 4..].copy_from_slice(&7u32.to_le_bytes());
        let mut r = &buf[..];
        assert!(Column::decode(&mut r).is_err());
    }

    #[test]
    fn approx_bytes_scales_with_rows() {
        let small = Column::ints("n", (0..10).collect());
        let big = Column::ints("n", (0..1000).collect());
        assert!(big.approx_bytes() > small.approx_bytes() * 50);
    }
}
