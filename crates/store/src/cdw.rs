//! Simulated cloud data warehouse connector.
//!
//! The paper's efficiency analysis hinges on two CDW realities that a plain
//! in-memory store would hide:
//!
//! 1. **Loading is real work.** Pulling a column out of a CDW serializes it,
//!    moves it over the network, and parses it. Every scan here round-trips
//!    the requested rows through the store's wire codec, so load cost is
//!    genuine CPU time proportional to bytes moved — this is what makes
//!    Table 2's "loading dominates end-to-end response time" reproducible.
//! 2. **Scans are billed.** Vendors charge per byte scanned (§3.1.3), which
//!    is why WarpGate samples. The [`CostMeter`] accumulates requests, bytes,
//!    *virtual* network latency (per-request + per-MB, not slept, so
//!    benchmarks stay fast) and dollars at a configurable $/TB rate.
//!
//! Sampling is pushed into the connector ([`CdwConnector::scan_column`]
//! takes a [`SampleSpec`]) so a sampled scan genuinely serializes fewer
//! bytes — exactly the cost structure the paper's §4.4 exploits.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::catalog::{ColumnRef, Warehouse};
use crate::column::Column;
use crate::error::StoreResult;
use crate::sample::SampleSpec;
use crate::table::Table;

/// Latency & pricing model for the simulated CDW.
#[derive(Debug, Clone, Copy)]
pub struct CdwConfig {
    /// Virtual round-trip latency charged per scan request, seconds.
    pub per_request_secs: f64,
    /// Virtual transfer latency charged per megabyte scanned, seconds.
    pub per_mb_secs: f64,
    /// Usage-based price per terabyte scanned, dollars (pay-as-you-go).
    pub usd_per_tb: f64,
}

impl Default for CdwConfig {
    fn default() -> Self {
        // Modeled on interactive result-set pulls from a same-region
        // warehouse: a small fixed round trip (~2 ms) plus ~1 s/MB
        // effective throughput — the latter deliberately folds in the
        // CDW-side scan/queue overhead, which is what makes *loading*
        // dominate end-to-end discovery latency exactly as the paper's
        // Table 2 observes. $5/TB scanned (BigQuery-like pricing).
        Self { per_request_secs: 0.002, per_mb_secs: 1.0, usd_per_tb: 5.0 }
    }
}

impl CdwConfig {
    /// A config with zero virtual latency and zero price — useful in unit
    /// tests that only care about data movement.
    pub fn free() -> Self {
        Self { per_request_secs: 0.0, per_mb_secs: 0.0, usd_per_tb: 0.0 }
    }
}

/// Thread-safe accumulator of scan costs.
#[derive(Debug, Default)]
pub struct CostMeter {
    requests: AtomicU64,
    bytes: AtomicU64,
    /// Virtual latency in nanoseconds (stored integrally for atomicity).
    virtual_nanos: AtomicU64,
}

impl CostMeter {
    fn charge(&self, config: &CdwConfig, bytes: usize) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        let secs =
            config.per_request_secs + config.per_mb_secs * (bytes as f64 / (1u64 << 20) as f64);
        self.virtual_nanos.fetch_add((secs * 1e9) as u64, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn snapshot(&self, config: &CdwConfig) -> CostSnapshot {
        let bytes = self.bytes.load(Ordering::Relaxed);
        CostSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            bytes_scanned: bytes,
            virtual_secs: self.virtual_nanos.load(Ordering::Relaxed) as f64 / 1e9,
            usd: bytes as f64 / 1e12 * config.usd_per_tb,
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.requests.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        self.virtual_nanos.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time view of accumulated scan costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostSnapshot {
    /// Number of scan requests issued.
    pub requests: u64,
    /// Total bytes serialized over the simulated wire.
    pub bytes_scanned: u64,
    /// Accumulated virtual network latency, seconds.
    pub virtual_secs: f64,
    /// Accumulated usage cost, dollars.
    pub usd: f64,
}

impl CostSnapshot {
    /// Difference since an earlier snapshot.
    pub fn since(&self, earlier: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            requests: self.requests - earlier.requests,
            bytes_scanned: self.bytes_scanned - earlier.bytes_scanned,
            virtual_secs: self.virtual_secs - earlier.virtual_secs,
            usd: self.usd - earlier.usd,
        }
    }
}

/// Connector to a (simulated) cloud data warehouse.
///
/// Owns the warehouse plus the metering state; hand `&CdwConnector` to as
/// many indexing threads as needed — the meter is atomic.
#[derive(Debug)]
pub struct CdwConnector {
    warehouse: Warehouse,
    config: CdwConfig,
    meter: CostMeter,
}

impl CdwConnector {
    /// Wrap a warehouse with the given latency/pricing model.
    pub fn new(warehouse: Warehouse, config: CdwConfig) -> Self {
        Self { warehouse, config, meter: CostMeter::default() }
    }

    /// Wrap with the default model.
    pub fn with_defaults(warehouse: Warehouse) -> Self {
        Self::new(warehouse, CdwConfig::default())
    }

    /// Catalog access (schema browsing is free: metadata queries are not
    /// billed as scans by CDW vendors).
    pub fn warehouse(&self) -> &Warehouse {
        &self.warehouse
    }

    /// Mutable catalog access for data refresh scenarios.
    pub fn warehouse_mut(&mut self) -> &mut Warehouse {
        &mut self.warehouse
    }

    /// The latency/pricing model.
    pub fn config(&self) -> &CdwConfig {
        &self.config
    }

    /// Scan one column with sampling pushed down. The returned column went
    /// through a serialize/deserialize round trip, exactly like data pulled
    /// from a real warehouse.
    pub fn scan_column(&self, r: &ColumnRef, sample: SampleSpec) -> StoreResult<Column> {
        let col = self.warehouse.column(r)?;
        let sampled = sample.apply(col);
        let mut wire = Vec::with_capacity(sampled.approx_bytes() + 64);
        sampled.encode(&mut wire);
        self.meter.charge(&self.config, wire.len());
        let mut cursor = &wire[..];
        Ok(Column::decode(&mut cursor)?)
    }

    /// Scan a whole table (one request; all columns share the row sample).
    pub fn scan_table(
        &self,
        database: &str,
        table: &str,
        sample: SampleSpec,
    ) -> StoreResult<Table> {
        let t = self.warehouse.table(database, table)?;
        let sampled = sample.apply_table(t);
        let mut wire = Vec::with_capacity(sampled.approx_bytes() + 64);
        wg_util::codec::put_len(&mut wire, sampled.num_columns());
        for c in sampled.columns() {
            c.encode(&mut wire);
        }
        self.meter.charge(&self.config, wire.len());
        let mut cursor = &wire[..];
        let n = wg_util::codec::get_len(&mut cursor)?;
        let mut cols = Vec::with_capacity(n);
        for _ in 0..n {
            cols.push(Column::decode(&mut cursor)?);
        }
        Table::new(sampled.name(), cols)
    }

    /// Current accumulated costs.
    pub fn costs(&self) -> CostSnapshot {
        self.meter.snapshot(&self.config)
    }

    /// Zero the meter (e.g. between indexing and query phases so each can
    /// be billed separately).
    pub fn reset_costs(&self) {
        self.meter.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;
    use crate::column::Column;

    fn connector() -> CdwConnector {
        let mut w = Warehouse::new("test");
        let mut db = Database::new("db");
        db.add_table(
            Table::new(
                "t",
                vec![
                    Column::text(
                        "name",
                        (0..1000).map(|i| format!("value_{i}")).collect::<Vec<_>>(),
                    ),
                    Column::ints("n", (0..1000).collect()),
                ],
            )
            .unwrap(),
        );
        w.add_database(db);
        CdwConnector::new(w, CdwConfig::default())
    }

    #[test]
    fn scan_roundtrips_data() {
        let c = connector();
        let col = c.scan_column(&ColumnRef::new("db", "t", "name"), SampleSpec::Full).unwrap();
        assert_eq!(col.len(), 1000);
        assert_eq!(col.get(5).to_string(), "value_5");
    }

    #[test]
    fn sampling_reduces_bytes_billed() {
        let c = connector();
        let r = ColumnRef::new("db", "t", "name");
        c.scan_column(&r, SampleSpec::Full).unwrap();
        let full = c.costs();
        c.reset_costs();
        c.scan_column(&r, SampleSpec::Head(10)).unwrap();
        let sampled = c.costs();
        assert!(
            sampled.bytes_scanned * 10 < full.bytes_scanned,
            "sampled {} vs full {}",
            sampled.bytes_scanned,
            full.bytes_scanned
        );
        assert!(sampled.virtual_secs < full.virtual_secs);
    }

    #[test]
    fn meter_counts_requests_and_dollars() {
        let c = connector();
        let r = ColumnRef::new("db", "t", "n");
        for _ in 0..3 {
            c.scan_column(&r, SampleSpec::Full).unwrap();
        }
        let s = c.costs();
        assert_eq!(s.requests, 3);
        assert!(s.bytes_scanned > 3 * 8000);
        assert!(s.usd > 0.0);
        // 3 requests at 2 ms minimum plus per-byte transfer.
        assert!(s.virtual_secs >= 0.006);
    }

    #[test]
    fn snapshot_since() {
        let c = connector();
        let r = ColumnRef::new("db", "t", "n");
        c.scan_column(&r, SampleSpec::Full).unwrap();
        let a = c.costs();
        c.scan_column(&r, SampleSpec::Full).unwrap();
        let b = c.costs();
        let d = b.since(&a);
        assert_eq!(d.requests, 1);
    }

    #[test]
    fn scan_table_keeps_alignment() {
        let c = connector();
        let t = c.scan_table("db", "t", SampleSpec::Reservoir { n: 10, seed: 1 }).unwrap();
        assert_eq!(t.num_rows(), 10);
        for r in 0..10 {
            let name = t.column("name").unwrap().get(r).to_string();
            let n = t.column("n").unwrap().get(r).to_string();
            assert_eq!(name, format!("value_{n}"));
        }
    }

    #[test]
    fn missing_column_errors() {
        let c = connector();
        assert!(c.scan_column(&ColumnRef::new("db", "t", "nope"), SampleSpec::Full).is_err());
    }

    #[test]
    fn free_config_zero_cost() {
        let mut w = Warehouse::new("w");
        w.database_mut("d").add_table(Table::new("t", vec![Column::ints("x", vec![1])]).unwrap());
        let c = CdwConnector::new(w, CdwConfig::free());
        c.scan_column(&ColumnRef::new("d", "t", "x"), SampleSpec::Full).unwrap();
        let s = c.costs();
        assert_eq!(s.virtual_secs, 0.0);
        assert_eq!(s.usd, 0.0);
        assert_eq!(s.requests, 1);
    }
}
