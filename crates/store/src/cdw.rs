//! Simulated cloud data warehouse connector.
//!
//! The paper's efficiency analysis hinges on two CDW realities that a plain
//! in-memory store would hide:
//!
//! 1. **Loading is real work.** Pulling a column out of a CDW serializes it,
//!    moves it over the network, and parses it. Every scan here round-trips
//!    the requested rows through the store's wire codec, so load cost is
//!    genuine CPU time proportional to bytes moved — this is what makes
//!    Table 2's "loading dominates end-to-end response time" reproducible.
//! 2. **Scans are billed.** Vendors charge per byte scanned (§3.1.3), which
//!    is why WarpGate samples. The [`CostMeter`] accumulates requests, bytes,
//!    *virtual* network latency (per-request + per-MB, not slept, so
//!    benchmarks stay fast) and dollars at a configurable $/TB rate.
//!
//! Sampling is pushed into the connector ([`CdwConnector::scan_column`]
//! takes a [`SampleSpec`]) so a sampled scan genuinely serializes fewer
//! bytes — exactly the cost structure the paper's §4.4 exploits.
//!
//! `CdwConnector` is one implementation of [`crate::WarehouseBackend`];
//! the warehouse sits behind a lock so a shared handle supports catalog
//! refreshes (`warehouse_mut`) while indexing threads scan.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::backend::{TableMeta, WarehouseBackend};
use crate::catalog::{ColumnRef, Warehouse};
use crate::column::Column;
use crate::error::StoreResult;
use crate::sample::SampleSpec;
use crate::table::Table;

/// Latency & pricing model for the simulated CDW.
#[derive(Debug, Clone, Copy)]
pub struct CdwConfig {
    /// Virtual round-trip latency charged per scan request, seconds.
    pub per_request_secs: f64,
    /// Virtual transfer latency charged per megabyte scanned, seconds.
    pub per_mb_secs: f64,
    /// Usage-based price per terabyte scanned, dollars (pay-as-you-go).
    pub usd_per_tb: f64,
}

impl Default for CdwConfig {
    fn default() -> Self {
        // Modeled on interactive result-set pulls from a same-region
        // warehouse: a small fixed round trip (~2 ms) plus ~1 s/MB
        // effective throughput — the latter deliberately folds in the
        // CDW-side scan/queue overhead, which is what makes *loading*
        // dominate end-to-end discovery latency exactly as the paper's
        // Table 2 observes. $5/TB scanned (BigQuery-like pricing).
        Self { per_request_secs: 0.002, per_mb_secs: 1.0, usd_per_tb: 5.0 }
    }
}

impl CdwConfig {
    /// A config with zero virtual latency and zero price — useful in unit
    /// tests that only care about data movement.
    pub fn free() -> Self {
        Self { per_request_secs: 0.0, per_mb_secs: 0.0, usd_per_tb: 0.0 }
    }
}

/// Thread-safe accumulator of scan costs.
#[derive(Debug, Default)]
pub struct CostMeter {
    requests: AtomicU64,
    bytes: AtomicU64,
    /// Virtual latency in nanoseconds (stored integrally for atomicity).
    virtual_nanos: AtomicU64,
}

impl CostMeter {
    /// Record one scan request of `bytes` serialized bytes under the given
    /// pricing model.
    pub fn charge(&self, config: &CdwConfig, bytes: usize) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        let secs =
            config.per_request_secs + config.per_mb_secs * (bytes as f64 / (1u64 << 20) as f64);
        self.virtual_nanos.fetch_add((secs * 1e9) as u64, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn snapshot(&self, config: &CdwConfig) -> CostSnapshot {
        let bytes = self.bytes.load(Ordering::Relaxed);
        CostSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            bytes_scanned: bytes,
            virtual_secs: self.virtual_nanos.load(Ordering::Relaxed) as f64 / 1e9,
            usd: bytes as f64 / 1e12 * config.usd_per_tb,
            retries: 0,
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.requests.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        self.virtual_nanos.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time view of accumulated scan costs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostSnapshot {
    /// Number of scan requests issued.
    pub requests: u64,
    /// Total bytes serialized over the simulated wire.
    pub bytes_scanned: u64,
    /// Accumulated virtual network latency, seconds.
    pub virtual_secs: f64,
    /// Accumulated usage cost, dollars.
    pub usd: f64,
    /// Retried calls recorded by retry middleware in the backend stack
    /// (0 for bare backends). Each unit is one repeated attempt; the
    /// backoff delay those retries cost is folded into `virtual_secs`.
    pub retries: u64,
}

impl CostSnapshot {
    /// Difference since an earlier snapshot. Saturating: a meter reset
    /// between the two snapshots yields zeros for the affected counters,
    /// never negative deltas (or an underflow panic).
    pub fn since(&self, earlier: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            requests: self.requests.saturating_sub(earlier.requests),
            bytes_scanned: self.bytes_scanned.saturating_sub(earlier.bytes_scanned),
            virtual_secs: (self.virtual_secs - earlier.virtual_secs).max(0.0),
            usd: (self.usd - earlier.usd).max(0.0),
            retries: self.retries.saturating_sub(earlier.retries),
        }
    }

    /// Element-wise sum (used by wrapper backends that add their own
    /// charges on top of an inner backend's).
    pub fn plus(&self, other: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            requests: self.requests + other.requests,
            bytes_scanned: self.bytes_scanned + other.bytes_scanned,
            virtual_secs: self.virtual_secs + other.virtual_secs,
            usd: self.usd + other.usd,
            retries: self.retries + other.retries,
        }
    }
}

/// Serialize a sampled column through the wire codec, charge the meter for
/// the bytes moved, and parse it back — the round trip every scan of a
/// remote warehouse pays. Shared by [`CdwConnector`] and
/// [`crate::CsvBackend`] so both bill identically.
pub(crate) fn wire_scan_column(
    column: &Column,
    sample: SampleSpec,
    config: &CdwConfig,
    meter: &CostMeter,
) -> StoreResult<Column> {
    let sampled = sample.apply(column);
    let mut wire = Vec::with_capacity(sampled.approx_bytes() + 64);
    sampled.encode(&mut wire);
    meter.charge(config, wire.len());
    let mut cursor = &wire[..];
    Ok(Column::decode(&mut cursor)?)
}

/// Table-granularity variant of [`wire_scan_column`]: one request, all
/// columns share the row sample.
pub(crate) fn wire_scan_table(
    table: &Table,
    sample: SampleSpec,
    config: &CdwConfig,
    meter: &CostMeter,
) -> StoreResult<Table> {
    let sampled = sample.apply_table(table);
    let mut wire = Vec::with_capacity(sampled.approx_bytes() + 64);
    wg_util::codec::put_len(&mut wire, sampled.num_columns());
    for c in sampled.columns() {
        c.encode(&mut wire);
    }
    meter.charge(config, wire.len());
    let mut cursor = &wire[..];
    let n = wg_util::codec::get_len(&mut cursor)?;
    let mut cols = Vec::with_capacity(n);
    for _ in 0..n {
        cols.push(Column::decode(&mut cursor)?);
    }
    Table::new(sampled.name(), cols)
}

/// Connector to a (simulated) cloud data warehouse.
///
/// Owns the warehouse plus the metering state; share it as
/// `Arc<CdwConnector>` (or a [`crate::BackendHandle`]) across as many
/// indexing threads as needed — the meter is atomic and the catalog sits
/// behind a read/write lock so refreshes ([`Self::warehouse_mut`]) work
/// through a shared handle.
pub struct CdwConnector {
    warehouse: RwLock<Warehouse>,
    config: CdwConfig,
    meter: CostMeter,
}

impl std::fmt::Debug for CdwConnector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CdwConnector")
            .field("warehouse", &self.warehouse.read().name().to_string())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl CdwConnector {
    /// Wrap a warehouse with the given latency/pricing model.
    pub fn new(warehouse: Warehouse, config: CdwConfig) -> Self {
        Self { warehouse: RwLock::new(warehouse), config, meter: CostMeter::default() }
    }

    /// Wrap with the default model.
    pub fn with_defaults(warehouse: Warehouse) -> Self {
        Self::new(warehouse, CdwConfig::default())
    }

    /// Catalog access (schema browsing is free: metadata queries are not
    /// billed as scans by CDW vendors). Returns a read guard — hold it
    /// only for the duration of the lookup.
    pub fn warehouse(&self) -> RwLockReadGuard<'_, Warehouse> {
        self.warehouse.read()
    }

    /// Mutable catalog access for data refresh scenarios. Works through a
    /// shared handle: concurrent scans block until the refresh is done.
    pub fn warehouse_mut(&self) -> RwLockWriteGuard<'_, Warehouse> {
        self.warehouse.write()
    }

    /// The latency/pricing model.
    pub fn config(&self) -> &CdwConfig {
        &self.config
    }

    /// Scan one column with sampling pushed down. The returned column went
    /// through a serialize/deserialize round trip, exactly like data pulled
    /// from a real warehouse.
    pub fn scan_column(&self, r: &ColumnRef, sample: SampleSpec) -> StoreResult<Column> {
        let warehouse = self.warehouse.read();
        let col = warehouse.column(r)?;
        wire_scan_column(col, sample, &self.config, &self.meter)
    }

    /// Scan a whole table (one request; all columns share the row sample).
    pub fn scan_table(
        &self,
        database: &str,
        table: &str,
        sample: SampleSpec,
    ) -> StoreResult<Table> {
        let warehouse = self.warehouse.read();
        let t = warehouse.table(database, table)?;
        wire_scan_table(t, sample, &self.config, &self.meter)
    }

    /// Current accumulated costs.
    pub fn costs(&self) -> CostSnapshot {
        self.meter.snapshot(&self.config)
    }

    /// Zero the meter (e.g. between indexing and query phases so each can
    /// be billed separately).
    pub fn reset_costs(&self) {
        self.meter.reset();
    }
}

impl WarehouseBackend for CdwConnector {
    fn name(&self) -> String {
        self.warehouse.read().name().to_string()
    }

    fn list_tables(&self) -> StoreResult<Vec<TableMeta>> {
        Ok(self.warehouse.read().table_metas())
    }

    fn table_meta(&self, database: &str, table: &str) -> StoreResult<TableMeta> {
        self.warehouse.read().table_meta(database, table)
    }

    fn scan_column(&self, r: &ColumnRef, sample: SampleSpec) -> StoreResult<Column> {
        CdwConnector::scan_column(self, r, sample)
    }

    fn scan_table(&self, database: &str, table: &str, sample: SampleSpec) -> StoreResult<Table> {
        CdwConnector::scan_table(self, database, table, sample)
    }

    fn costs(&self) -> CostSnapshot {
        CdwConnector::costs(self)
    }

    fn reset_costs(&self) {
        CdwConnector::reset_costs(self)
    }

    fn validate_column(&self, r: &ColumnRef) -> StoreResult<()> {
        // Cheaper than the default table_meta path: one catalog lookup.
        self.warehouse.read().column(r).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;
    use crate::column::Column;

    fn connector() -> CdwConnector {
        let mut w = Warehouse::new("test");
        let mut db = Database::new("db");
        db.add_table(
            Table::new(
                "t",
                vec![
                    Column::text(
                        "name",
                        (0..1000).map(|i| format!("value_{i}")).collect::<Vec<_>>(),
                    ),
                    Column::ints("n", (0..1000).collect()),
                ],
            )
            .unwrap(),
        );
        w.add_database(db);
        CdwConnector::new(w, CdwConfig::default())
    }

    #[test]
    fn scan_roundtrips_data() {
        let c = connector();
        let col = c.scan_column(&ColumnRef::new("db", "t", "name"), SampleSpec::Full).unwrap();
        assert_eq!(col.len(), 1000);
        assert_eq!(col.get(5).to_string(), "value_5");
    }

    #[test]
    fn sampling_reduces_bytes_billed() {
        let c = connector();
        let r = ColumnRef::new("db", "t", "name");
        c.scan_column(&r, SampleSpec::Full).unwrap();
        let full = c.costs();
        c.reset_costs();
        c.scan_column(&r, SampleSpec::Head(10)).unwrap();
        let sampled = c.costs();
        assert!(
            sampled.bytes_scanned * 10 < full.bytes_scanned,
            "sampled {} vs full {}",
            sampled.bytes_scanned,
            full.bytes_scanned
        );
        assert!(sampled.virtual_secs < full.virtual_secs);
    }

    #[test]
    fn meter_counts_requests_and_dollars() {
        let c = connector();
        let r = ColumnRef::new("db", "t", "n");
        for _ in 0..3 {
            c.scan_column(&r, SampleSpec::Full).unwrap();
        }
        let s = c.costs();
        assert_eq!(s.requests, 3);
        assert!(s.bytes_scanned > 3 * 8000);
        assert!(s.usd > 0.0);
        // 3 requests at 2 ms minimum plus per-byte transfer.
        assert!(s.virtual_secs >= 0.006);
    }

    #[test]
    fn snapshot_since() {
        let c = connector();
        let r = ColumnRef::new("db", "t", "n");
        c.scan_column(&r, SampleSpec::Full).unwrap();
        let a = c.costs();
        c.scan_column(&r, SampleSpec::Full).unwrap();
        let b = c.costs();
        let d = b.since(&a);
        assert_eq!(d.requests, 1);
    }

    #[test]
    fn since_reports_exact_deltas() {
        // Direct CostSnapshot::since coverage: every field is the
        // component-wise difference.
        let a = CostSnapshot {
            requests: 2,
            bytes_scanned: 100,
            virtual_secs: 0.5,
            usd: 0.01,
            retries: 1,
        };
        let b = CostSnapshot {
            requests: 5,
            bytes_scanned: 350,
            virtual_secs: 1.25,
            usd: 0.04,
            retries: 3,
        };
        let d = b.since(&a);
        assert_eq!(d.requests, 3);
        assert_eq!(d.bytes_scanned, 250);
        assert!((d.virtual_secs - 0.75).abs() < 1e-12);
        assert!((d.usd - 0.03).abs() < 1e-12);
        assert_eq!(d.retries, 2);
        // since(self) is zero.
        assert_eq!(b.since(&b), CostSnapshot::default());
        // plus is component-wise, retries included.
        assert_eq!(a.plus(&b).retries, 4);
    }

    #[test]
    fn since_saturates_when_meter_was_reset_in_between() {
        let c = connector();
        let r = ColumnRef::new("db", "t", "n");
        for _ in 0..5 {
            c.scan_column(&r, SampleSpec::Full).unwrap();
        }
        let before = c.costs();
        c.reset_costs();
        c.scan_column(&r, SampleSpec::Full).unwrap();
        let after = c.costs();
        // `after` is numerically below `before`; the delta must clamp to
        // zero rather than underflow.
        let d = after.since(&before);
        assert_eq!(d.requests, 0);
        assert_eq!(d.bytes_scanned, 0);
        assert_eq!(d.virtual_secs, 0.0);
        assert_eq!(d.usd, 0.0);
    }

    #[test]
    fn reset_racing_concurrent_scans_never_goes_negative() {
        // CostMeter::reset racing scans: snapshots taken while another
        // thread resets must never produce negative deltas, and the final
        // state stays consistent (requests/bytes both from post-reset
        // scans only, never a torn mixture with more requests than bytes
        // can account for).
        let c = std::sync::Arc::new(connector());
        let r = ColumnRef::new("db", "t", "n");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = std::sync::Arc::clone(&c);
                let r = r.clone();
                scope.spawn(move || {
                    let mut last = c.costs();
                    for _ in 0..50 {
                        c.scan_column(&r, SampleSpec::Full).unwrap();
                        let now = c.costs();
                        // Saturating `since` guarantees no negative deltas
                        // even when a reset landed between the snapshots.
                        let d = now.since(&last);
                        assert!(d.virtual_secs >= 0.0);
                        assert!(d.usd >= 0.0);
                        last = now;
                    }
                });
            }
            let c = std::sync::Arc::clone(&c);
            scope.spawn(move || {
                for _ in 0..25 {
                    c.reset_costs();
                    std::hint::spin_loop();
                }
            });
        });
        let end = c.costs();
        assert!(end.requests <= 200, "requests can only shrink via reset");
        assert!(end.virtual_secs >= 0.0 && end.usd >= 0.0);
    }

    #[test]
    fn scan_table_keeps_alignment() {
        let c = connector();
        let t = c.scan_table("db", "t", SampleSpec::Reservoir { n: 10, seed: 1 }).unwrap();
        assert_eq!(t.num_rows(), 10);
        for r in 0..10 {
            let name = t.column("name").unwrap().get(r).to_string();
            let n = t.column("n").unwrap().get(r).to_string();
            assert_eq!(name, format!("value_{n}"));
        }
    }

    #[test]
    fn missing_column_errors() {
        let c = connector();
        assert!(c.scan_column(&ColumnRef::new("db", "t", "nope"), SampleSpec::Full).is_err());
    }

    #[test]
    fn free_config_zero_cost() {
        let mut w = Warehouse::new("w");
        w.database_mut("d").add_table(Table::new("t", vec![Column::ints("x", vec![1])]).unwrap());
        let c = CdwConnector::new(w, CdwConfig::free());
        c.scan_column(&ColumnRef::new("d", "t", "x"), SampleSpec::Full).unwrap();
        let s = c.costs();
        assert_eq!(s.virtual_secs, 0.0);
        assert_eq!(s.usd, 0.0);
        assert_eq!(s.requests, 1);
    }

    #[test]
    fn warehouse_mut_works_through_shared_handle() {
        let c = connector();
        c.warehouse_mut()
            .database_mut("db")
            .add_table(Table::new("extra", vec![Column::ints("x", vec![1, 2])]).unwrap());
        assert_eq!(c.warehouse().num_tables(), 2);
        let col = c.scan_column(&ColumnRef::new("db", "extra", "x"), SampleSpec::Full).unwrap();
        assert_eq!(col.len(), 2);
    }

    #[test]
    fn backend_surface_matches_catalog() {
        let c = connector();
        let b: &dyn WarehouseBackend = &c;
        assert_eq!(b.name(), "test");
        let metas = b.list_tables().unwrap();
        assert_eq!(metas.len(), 1);
        assert_eq!(metas[0].columns, vec!["name", "n"]);
        let versions = b.snapshot_versions().unwrap();
        assert_eq!(versions[0].version, metas[0].version);
        // Mutating the table through the connector changes the token.
        c.warehouse_mut()
            .database_mut("db")
            .add_table(Table::new("t", vec![Column::ints("n", vec![9])]).unwrap());
        let fresh = b.snapshot_versions().unwrap();
        assert_ne!(fresh[0].version, versions[0].version);
    }
}
