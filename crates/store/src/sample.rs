//! Sampling operators.
//!
//! Sampling is WarpGate's central cost lever (§3.1.3): reading full tables
//! out of a CDW is slow and billed per byte, so the connector pushes a
//! [`SampleSpec`] into every scan. §4.4 shows the embedding approach stays
//! within ±1–2% effectiveness at sample sizes as small as 10 while cutting
//! response time to interactive speed — the specs here are what that
//! experiment sweeps.

use wg_util::rng::{Rng64, Xoshiro256pp};

use crate::column::Column;
use crate::table::Table;

/// How a scan should reduce the rows it returns.
///
/// `Hash` lets specs key caches (the embedding cache in `warpgate_core`
/// stores one entry per column × spec).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SampleSpec {
    /// No sampling: the full column/table is scanned (the expensive path
    /// the paper's Table 2 measures).
    Full,
    /// First `n` rows. Cheapest but biased toward load order.
    Head(usize),
    /// Uniform random sample of `n` rows without replacement (reservoir
    /// sampling), seeded for reproducibility.
    Reservoir { n: usize, seed: u64 },
    /// Up to `n` *distinct* values, chosen by reservoir over the distinct
    /// set. Best per-byte signal for embeddings: duplicates carry no new
    /// semantic information.
    DistinctReservoir { n: usize, seed: u64 },
}

impl SampleSpec {
    /// The target row count, if the spec bounds one.
    pub fn target(&self) -> Option<usize> {
        match self {
            SampleSpec::Full => None,
            SampleSpec::Head(n)
            | SampleSpec::Reservoir { n, .. }
            | SampleSpec::DistinctReservoir { n, .. } => Some(*n),
        }
    }

    /// Row indices selected from a column of length `len`.
    ///
    /// For [`SampleSpec::DistinctReservoir`] the indices point at the first
    /// occurrence of each chosen distinct value, so `column.take(&idx)`
    /// yields one row per sampled value.
    pub fn select_rows(&self, column: &Column, len: usize) -> Vec<usize> {
        match *self {
            SampleSpec::Full => (0..len).collect(),
            SampleSpec::Head(n) => (0..len.min(n)).collect(),
            SampleSpec::Reservoir { n, seed } => reservoir_indices(len, n, seed),
            SampleSpec::DistinctReservoir { n, seed } => {
                distinct_reservoir_indices(column, n, seed)
            }
        }
    }

    /// Apply to a column, producing the sampled column.
    pub fn apply(&self, column: &Column) -> Column {
        match self {
            SampleSpec::Full => column.clone(),
            _ => {
                let idx = self.select_rows(column, column.len());
                column.take(&idx)
            }
        }
    }

    /// Encode for the remote-backend wire protocol: a tag byte plus the
    /// spec's parameters. See [`crate::remote`] for the frame layout.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        use wg_util::codec::{put_u64, put_u8};
        match *self {
            SampleSpec::Full => put_u8(buf, 0),
            SampleSpec::Head(n) => {
                put_u8(buf, 1);
                put_u64(buf, n as u64);
            }
            SampleSpec::Reservoir { n, seed } => {
                put_u8(buf, 2);
                put_u64(buf, n as u64);
                put_u64(buf, seed);
            }
            SampleSpec::DistinctReservoir { n, seed } => {
                put_u8(buf, 3);
                put_u64(buf, n as u64);
                put_u64(buf, seed);
            }
        }
    }

    /// Decode the wire form written by [`Self::encode`].
    pub fn decode(buf: &mut &[u8]) -> wg_util::codec::CodecResult<SampleSpec> {
        use wg_util::codec::{get_u64, get_u8, CodecError};
        Ok(match get_u8(buf)? {
            0 => SampleSpec::Full,
            1 => SampleSpec::Head(get_u64(buf)? as usize),
            2 => {
                let n = get_u64(buf)? as usize;
                SampleSpec::Reservoir { n, seed: get_u64(buf)? }
            }
            3 => {
                let n = get_u64(buf)? as usize;
                SampleSpec::DistinctReservoir { n, seed: get_u64(buf)? }
            }
            tag => return Err(CodecError::Invalid(format!("unknown SampleSpec tag {tag}"))),
        })
    }

    /// Apply to a whole table: one row selection shared across columns so
    /// rows stay aligned. `DistinctReservoir` falls back to plain reservoir
    /// at table granularity (distinctness is a per-column notion).
    pub fn apply_table(&self, table: &Table) -> Table {
        match *self {
            SampleSpec::Full => table.clone(),
            SampleSpec::Head(n) => table.head(n),
            SampleSpec::Reservoir { n, seed } | SampleSpec::DistinctReservoir { n, seed } => {
                let idx = reservoir_indices(table.num_rows(), n, seed);
                table.take(&idx)
            }
        }
    }
}

/// Algorithm R reservoir sampling over `[0, len)`, output sorted ascending
/// so downstream `take` preserves original row order.
fn reservoir_indices(len: usize, n: usize, seed: u64) -> Vec<usize> {
    if n >= len {
        return (0..len).collect();
    }
    let mut rng = Xoshiro256pp::new(seed);
    let mut reservoir: Vec<usize> = (0..n).collect();
    for i in n..len {
        let j = rng.gen_index(i + 1);
        if j < n {
            reservoir[j] = i;
        }
    }
    reservoir.sort_unstable();
    reservoir
}

/// Reservoir over the *distinct values* of a column; returns first-occurrence
/// row indices of the sampled values, sorted ascending.
fn distinct_reservoir_indices(column: &Column, n: usize, seed: u64) -> Vec<usize> {
    // Walk rows, tracking the first occurrence index of each distinct value,
    // and run a reservoir over that stream of first occurrences.
    use wg_util::FxHashSet;
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    let mut rng = Xoshiro256pp::new(seed);
    let mut reservoir: Vec<usize> = Vec::with_capacity(n);
    let mut distinct_rank = 0usize;
    let mut key = Vec::new();
    for row in 0..column.len() {
        let v = column.get(row);
        if v.is_null() {
            continue;
        }
        v.key_bytes(&mut key);
        let h = wg_util::stable_hash64(&key);
        if !seen.insert(h) {
            continue;
        }
        if reservoir.len() < n {
            reservoir.push(row);
        } else {
            let j = rng.gen_index(distinct_rank + 1);
            if j < n {
                reservoir[j] = row;
            }
        }
        distinct_rank += 1;
    }
    reservoir.sort_unstable();
    reservoir
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueRef;

    #[test]
    fn full_is_identity() {
        let c = Column::ints("n", (0..100).collect());
        assert_eq!(SampleSpec::Full.apply(&c), c);
    }

    #[test]
    fn head_takes_prefix() {
        let c = Column::ints("n", (0..100).collect());
        let s = SampleSpec::Head(5).apply(&c);
        assert_eq!(s.len(), 5);
        assert_eq!(s.get(4), ValueRef::Int(4));
    }

    #[test]
    fn reservoir_size_and_uniqueness() {
        let c = Column::ints("n", (0..1000).collect());
        let s = SampleSpec::Reservoir { n: 50, seed: 1 }.apply(&c);
        assert_eq!(s.len(), 50);
        let mut vals: Vec<i64> = s
            .iter()
            .map(|v| match v {
                ValueRef::Int(i) => i,
                _ => panic!(),
            })
            .collect();
        let before = vals.len();
        vals.dedup();
        assert_eq!(vals.len(), before, "no repeats without replacement");
    }

    #[test]
    fn reservoir_smaller_input_returns_all() {
        let c = Column::ints("n", (0..10).collect());
        let s = SampleSpec::Reservoir { n: 50, seed: 1 }.apply(&c);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn reservoir_is_deterministic_per_seed() {
        let c = Column::ints("n", (0..1000).collect());
        let a = SampleSpec::Reservoir { n: 20, seed: 7 }.apply(&c);
        let b = SampleSpec::Reservoir { n: 20, seed: 7 }.apply(&c);
        let d = SampleSpec::Reservoir { n: 20, seed: 8 }.apply(&c);
        assert_eq!(a, b);
        assert_ne!(a, d);
    }

    #[test]
    fn reservoir_is_roughly_uniform() {
        // Sample 1 of 2 many times; both rows should be picked ~half the time.
        let c = Column::ints("n", vec![0, 1]);
        let mut first = 0;
        for seed in 0..2000 {
            let s = SampleSpec::Reservoir { n: 1, seed }.apply(&c);
            if s.get(0) == ValueRef::Int(0) {
                first += 1;
            }
        }
        assert!((800..1200).contains(&first), "first picked {first}/2000");
    }

    #[test]
    fn distinct_reservoir_takes_distinct_values() {
        let c = Column::text("t", ["a", "a", "b", "b", "b", "c"]);
        let s = SampleSpec::DistinctReservoir { n: 2, seed: 3 }.apply(&c);
        assert_eq!(s.len(), 2);
        assert_eq!(s.distinct_count(), 2);
    }

    #[test]
    fn distinct_reservoir_skips_nulls() {
        let c = Column::text_opt("t", [None, Some("a"), None, Some("b")]);
        let s = SampleSpec::DistinctReservoir { n: 10, seed: 3 }.apply(&c);
        assert_eq!(s.len(), 2);
        assert_eq!(s.null_count(), 0);
    }

    #[test]
    fn apply_table_keeps_rows_aligned() {
        let t = Table::new(
            "t",
            vec![
                Column::ints("id", (0..100).collect()),
                Column::ints("id2", (0..100).map(|i| i * 10).collect()),
            ],
        )
        .unwrap();
        let s = SampleSpec::Reservoir { n: 10, seed: 5 }.apply_table(&t);
        assert_eq!(s.num_rows(), 10);
        for r in 0..10 {
            let a = match s.column("id").unwrap().get(r) {
                ValueRef::Int(i) => i,
                _ => panic!(),
            };
            let b = match s.column("id2").unwrap().get(r) {
                ValueRef::Int(i) => i,
                _ => panic!(),
            };
            assert_eq!(b, a * 10, "row alignment broken");
        }
    }

    #[test]
    fn target_reports_bound() {
        assert_eq!(SampleSpec::Full.target(), None);
        assert_eq!(SampleSpec::Head(5).target(), Some(5));
        assert_eq!(SampleSpec::Reservoir { n: 9, seed: 0 }.target(), Some(9));
    }

    #[test]
    fn wire_codec_roundtrips_every_variant() {
        for spec in [
            SampleSpec::Full,
            SampleSpec::Head(17),
            SampleSpec::Reservoir { n: 100, seed: 0xABCD },
            SampleSpec::DistinctReservoir { n: 1000, seed: 0x5A17 },
        ] {
            let mut buf = Vec::new();
            spec.encode(&mut buf);
            let mut cursor = &buf[..];
            assert_eq!(SampleSpec::decode(&mut cursor).unwrap(), spec);
            assert!(cursor.is_empty(), "trailing bytes after {spec:?}");
        }
        let mut bad: &[u8] = &[9];
        assert!(SampleSpec::decode(&mut bad).is_err());
    }
}
