//! Retrying middleware for warehouse backends.
//!
//! Cloud warehouses fail transiently — links flap, warehouses suspend and
//! resume, quotas trip and clear. [`RetryBackend`] wraps any
//! [`WarehouseBackend`] and retries calls that fail with a *retryable*
//! error ([`StoreError::is_retryable`]) under an exponential-backoff
//! schedule with deterministic jitter and a per-call backoff budget.
//!
//! Design points:
//!
//! * **Deterministic.** Jitter comes from a seeded PRNG and time comes
//!   from an injectable [`RetryClock`], so resilience tests assert exact
//!   backoff schedules without a flaky suite. The default
//!   [`VirtualClock`] never blocks: backoff time is *charged* (it lands in
//!   [`CostSnapshot::virtual_secs`]) but not slept, mirroring how the
//!   simulated CDW charges network latency.
//! * **Observable.** Every repeated attempt increments a retry counter
//!   surfaced through [`CostSnapshot::retries`], so `QueryTiming`,
//!   `IndexReport::cost` and `SyncReport::cost` all show how hard the
//!   middleware had to work.
//! * **Bounded.** A call gives up when its attempt budget
//!   ([`RetryPolicy::max_attempts`]) or its backoff-time budget
//!   ([`RetryPolicy::budget_secs`]) is exhausted, wrapping the last
//!   transient error in [`StoreError::RetriesExhausted`]. Fatal errors
//!   propagate immediately, unwrapped.
//!
//! Composition order matters: `RetryBackend(FaultInjector(inner))`
//! retries *over* the injected faults (the resilient stack), while
//! `FaultInjector(RetryBackend(inner))` would fault the already-retried
//! calls. See DESIGN.md §7.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use wg_util::rng::Xoshiro256pp;

use crate::backend::{BackendHandle, TableMeta, TableVersion, WarehouseBackend};
use crate::catalog::ColumnRef;
use crate::cdw::CostSnapshot;
use crate::column::Column;
use crate::error::{StoreError, StoreResult};
use crate::sample::SampleSpec;
use crate::table::Table;

/// Backoff schedule and budgets for [`RetryBackend`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum total attempts per call, the initial one included. 1 means
    /// "never retry".
    pub max_attempts: u32,
    /// Backoff before the first retry, seconds.
    pub base_delay_secs: f64,
    /// Multiplier applied to the delay after every retry (2.0 doubles).
    pub multiplier: f64,
    /// Upper bound on any single backoff delay, seconds (pre-jitter).
    pub max_delay_secs: f64,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a factor drawn
    /// uniformly from `[1 - jitter, 1 + jitter)`. 0 disables jitter.
    pub jitter: f64,
    /// Per-call budget on *total* backoff time, seconds. A retry whose
    /// delay would push the call past this budget is not attempted.
    pub budget_secs: f64,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_delay_secs: 0.05,
            multiplier: 2.0,
            max_delay_secs: 2.0,
            jitter: 0.2,
            budget_secs: 10.0,
            seed: 0x52_4554_5259, // "RETRY"
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries — wraps a backend transparently (useful
    /// to keep one composition shape everywhere).
    pub fn none() -> Self {
        Self { max_attempts: 1, ..Self::default() }
    }

    /// Same policy with a different attempt budget.
    pub fn with_max_attempts(self, max_attempts: u32) -> Self {
        Self { max_attempts, ..self }
    }

    /// Same policy with a different jitter fraction.
    pub fn with_jitter(self, jitter: f64) -> Self {
        assert!((0.0..=1.0).contains(&jitter), "jitter must be in [0,1]");
        Self { jitter, ..self }
    }

    /// The nominal (pre-jitter) backoff before retry number `retry`
    /// (1-based): `base · multiplier^(retry-1)`, capped at
    /// [`Self::max_delay_secs`].
    pub fn nominal_delay_secs(&self, retry: u32) -> f64 {
        let exp = self.base_delay_secs * self.multiplier.powi(retry.saturating_sub(1) as i32);
        exp.min(self.max_delay_secs)
    }
}

/// Source of backoff waiting for [`RetryBackend`] — injectable so tests
/// control time.
pub trait RetryClock: Send + Sync {
    /// Wait out one backoff delay of `secs` seconds.
    fn sleep(&self, secs: f64);
}

/// A clock that never blocks: backoff time is charged to the cost model
/// (see [`CostSnapshot::virtual_secs`]) but not slept. The default — the
/// workspace's benches and tests stay fast, exactly like the simulated
/// CDW's virtual network latency.
#[derive(Debug, Default, Clone, Copy)]
pub struct VirtualClock;

impl RetryClock for VirtualClock {
    fn sleep(&self, _secs: f64) {}
}

/// A clock that really sleeps — what a deployed service loop would use.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl RetryClock for SystemClock {
    fn sleep(&self, secs: f64) {
        if secs > 0.0 {
            std::thread::sleep(std::time::Duration::from_secs_f64(secs));
        }
    }
}

/// A [`WarehouseBackend`] decorator that retries transient failures of the
/// inner backend per a [`RetryPolicy`]. See the module docs.
pub struct RetryBackend {
    inner: BackendHandle,
    policy: RetryPolicy,
    clock: Arc<dyn RetryClock>,
    jitter_rng: Mutex<Xoshiro256pp>,
    /// Repeated attempts made (not counting each call's first attempt).
    retries: AtomicU64,
    /// Total backoff charged, nanoseconds.
    backoff_nanos: AtomicU64,
}

impl std::fmt::Debug for RetryBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetryBackend")
            .field("inner", &self.inner.name())
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl RetryBackend {
    /// Wrap `inner` with the given policy and the non-blocking
    /// [`VirtualClock`]: backoff is *charged* (visible in
    /// [`CostSnapshot::virtual_secs`]) but not slept, so all attempts of
    /// a call fire back-to-back in real time. That is the right model for
    /// this workspace's simulated warehouses, whose faults clear between
    /// calls, not with the passage of time. A deployment whose outages
    /// take real seconds to clear should use
    /// [`Self::with_clock`]`(…, Arc::new(SystemClock))` so the backoff
    /// (and `budget_secs`) actually spans the outage.
    pub fn new(inner: BackendHandle, policy: RetryPolicy) -> Self {
        Self::with_clock(inner, policy, Arc::new(VirtualClock))
    }

    /// Wrap `inner` with the default policy and the non-blocking
    /// [`VirtualClock`] (see [`Self::new`] for when to prefer
    /// [`SystemClock`]).
    pub fn with_defaults(inner: BackendHandle) -> Self {
        Self::new(inner, RetryPolicy::default())
    }

    /// Wrap with a caller-provided clock (tests inject recorders; service
    /// loops inject [`SystemClock`] so backoff really waits out outages).
    pub fn with_clock(
        inner: BackendHandle,
        policy: RetryPolicy,
        clock: Arc<dyn RetryClock>,
    ) -> Self {
        assert!(policy.max_attempts >= 1, "max_attempts must be at least 1");
        assert!((0.0..=1.0).contains(&policy.jitter), "jitter must be in [0,1]");
        Self {
            inner,
            policy,
            clock,
            jitter_rng: Mutex::new(Xoshiro256pp::new(policy.seed)),
            retries: AtomicU64::new(0),
            backoff_nanos: AtomicU64::new(0),
        }
    }

    /// The policy in effect.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &BackendHandle {
        &self.inner
    }

    /// Repeated attempts made since construction or the last cost reset.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// One jittered delay: nominal schedule value scaled by a factor drawn
    /// from `[1 - jitter, 1 + jitter)` on the deterministic stream.
    fn jittered_delay_secs(&self, retry: u32) -> f64 {
        let nominal = self.policy.nominal_delay_secs(retry);
        if self.policy.jitter <= 0.0 {
            return nominal;
        }
        // 53-bit uniform in [0, 1).
        let u = (self.jitter_rng.lock().next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        nominal * (1.0 + self.policy.jitter * (2.0 * u - 1.0))
    }

    /// Run `op`, retrying transient failures under the policy.
    fn call<T>(&self, op: impl Fn() -> StoreResult<T>) -> StoreResult<T> {
        let mut attempts: u32 = 1;
        let mut spent_secs = 0.0_f64;
        loop {
            let err = match op() {
                Ok(v) => return Ok(v),
                Err(e) => e,
            };
            if !err.is_retryable() {
                return Err(err);
            }
            let give_up = |last: StoreError| {
                if attempts > 1 {
                    StoreError::RetriesExhausted { attempts, last: Box::new(last) }
                } else {
                    // max_attempts == 1: no retry ever happened; the bare
                    // error is the honest answer.
                    last
                }
            };
            if attempts >= self.policy.max_attempts {
                return Err(give_up(err));
            }
            let delay = self.jittered_delay_secs(attempts);
            if spent_secs + delay > self.policy.budget_secs {
                return Err(give_up(err));
            }
            spent_secs += delay;
            self.backoff_nanos.fetch_add((delay * 1e9) as u64, Ordering::Relaxed);
            self.retries.fetch_add(1, Ordering::Relaxed);
            self.clock.sleep(delay);
            attempts += 1;
        }
    }
}

impl WarehouseBackend for RetryBackend {
    fn name(&self) -> String {
        format!("retry:{}", self.inner.name())
    }

    fn list_tables(&self) -> StoreResult<Vec<TableMeta>> {
        self.call(|| self.inner.list_tables())
    }

    fn table_meta(&self, database: &str, table: &str) -> StoreResult<TableMeta> {
        self.call(|| self.inner.table_meta(database, table))
    }

    fn scan_column(&self, r: &ColumnRef, sample: SampleSpec) -> StoreResult<Column> {
        self.call(|| self.inner.scan_column(r, sample))
    }

    fn scan_table(&self, database: &str, table: &str, sample: SampleSpec) -> StoreResult<Table> {
        self.call(|| self.inner.scan_table(database, table, sample))
    }

    fn costs(&self) -> CostSnapshot {
        let own = CostSnapshot {
            virtual_secs: self.backoff_nanos.load(Ordering::Relaxed) as f64 / 1e9,
            retries: self.retries.load(Ordering::Relaxed),
            ..CostSnapshot::default()
        };
        self.inner.costs().plus(&own)
    }

    fn reset_costs(&self) {
        self.inner.reset_costs();
        self.backoff_nanos.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
    }

    fn validate_column(&self, r: &ColumnRef) -> StoreResult<()> {
        self.call(|| self.inner.validate_column(r))
    }

    fn snapshot_versions(&self) -> StoreResult<Vec<TableVersion>> {
        self.call(|| self.inner.snapshot_versions())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Database, Warehouse};
    use crate::cdw::{CdwConfig, CdwConnector};
    use crate::fault::{FaultInjector, FaultPlan};

    /// Records every sleep it is asked for.
    #[derive(Default)]
    struct RecordingClock(Mutex<Vec<f64>>);

    impl RetryClock for RecordingClock {
        fn sleep(&self, secs: f64) {
            self.0.lock().push(secs);
        }
    }

    fn inner() -> BackendHandle {
        let mut w = Warehouse::new("w");
        let mut db = Database::new("db");
        db.add_table(
            Table::new(
                "t",
                vec![Column::text("a", (0..20).map(|i| format!("v{i}")).collect::<Vec<_>>())],
            )
            .unwrap(),
        );
        w.add_database(db);
        Arc::new(CdwConnector::new(w, CdwConfig::free()))
    }

    fn no_jitter(max_attempts: u32, base: f64, budget: f64) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            base_delay_secs: base,
            multiplier: 2.0,
            max_delay_secs: 100.0,
            jitter: 0.0,
            budget_secs: budget,
            seed: 7,
        }
    }

    #[test]
    fn backoff_schedule_doubles_and_caps() {
        let p = RetryPolicy {
            base_delay_secs: 0.1,
            multiplier: 2.0,
            max_delay_secs: 0.5,
            ..RetryPolicy::default()
        };
        let schedule: Vec<f64> = (1..=5).map(|r| p.nominal_delay_secs(r)).collect();
        assert_eq!(schedule, vec![0.1, 0.2, 0.4, 0.5, 0.5]);
    }

    #[test]
    fn retries_until_success_with_exact_schedule() {
        // Every scan fails: 3 failures burn the 4-attempt budget, with
        // delays exactly [base, 2·base, 4·base] on the recording clock.
        let flaky: BackendHandle = Arc::new(FaultInjector::new(inner(), FaultPlan::fail_every(1)));
        let clock = Arc::new(RecordingClock::default());
        let b = RetryBackend::with_clock(flaky, no_jitter(4, 0.25, 100.0), clock.clone());
        let err = b.scan_column(&ColumnRef::new("db", "t", "a"), SampleSpec::Full).unwrap_err();
        assert!(
            matches!(err, StoreError::RetriesExhausted { attempts: 4, .. }),
            "unexpected: {err:?}"
        );
        assert_eq!(*clock.0.lock(), vec![0.25, 0.5, 1.0]);
        assert_eq!(b.retries(), 3);
        // Backoff landed in the cost model as virtual latency.
        assert!((b.costs().virtual_secs - 1.75).abs() < 1e-9);
        assert_eq!(b.costs().retries, 3);
    }

    #[test]
    fn recovers_when_a_retry_succeeds() {
        // Every 2nd scan fails: each faulted attempt is followed by one
        // successful retry, so the call always completes.
        let flaky = Arc::new(FaultInjector::new(inner(), FaultPlan::fail_every(2)));
        let b = RetryBackend::with_clock(
            flaky.clone(),
            no_jitter(4, 0.01, 100.0),
            Arc::new(VirtualClock),
        );
        let r = ColumnRef::new("db", "t", "a");
        for _ in 0..6 {
            b.scan_column(&r, SampleSpec::Full).unwrap();
        }
        assert_eq!(flaky.faults_injected(), b.retries());
        assert!(b.retries() >= 1);
    }

    #[test]
    fn budget_exhaustion_stops_retrying_early() {
        // base 1.0 s, budget 2.5 s: retry 1 sleeps 1.0, retry 2 sleeps 2.0
        // — but that would spend 3.0 > 2.5, so the call gives up after two
        // attempts even though max_attempts allows ten.
        let flaky: BackendHandle = Arc::new(FaultInjector::new(inner(), FaultPlan::fail_every(1)));
        let clock = Arc::new(RecordingClock::default());
        let b = RetryBackend::with_clock(flaky, no_jitter(10, 1.0, 2.5), clock.clone());
        let err = b.scan_column(&ColumnRef::new("db", "t", "a"), SampleSpec::Full).unwrap_err();
        assert!(
            matches!(err, StoreError::RetriesExhausted { attempts: 2, .. }),
            "unexpected: {err:?}"
        );
        assert_eq!(*clock.0.lock(), vec![1.0], "second backoff must not be slept");
    }

    #[test]
    fn jitter_stays_within_bounds_and_is_deterministic() {
        let mk = || {
            let flaky: BackendHandle =
                Arc::new(FaultInjector::new(inner(), FaultPlan::fail_every(1)));
            let clock = Arc::new(RecordingClock::default());
            let policy = RetryPolicy {
                max_attempts: 8,
                base_delay_secs: 0.1,
                multiplier: 2.0,
                max_delay_secs: 100.0,
                jitter: 0.5,
                budget_secs: 1e9,
                seed: 42,
            };
            let b = RetryBackend::with_clock(flaky, policy, clock.clone());
            b.scan_column(&ColumnRef::new("db", "t", "a"), SampleSpec::Full).unwrap_err();
            let delays = clock.0.lock().clone();
            (b, delays)
        };
        let (b, delays) = mk();
        assert_eq!(delays.len(), 7);
        for (i, d) in delays.iter().enumerate() {
            let nominal = b.policy().nominal_delay_secs(i as u32 + 1);
            assert!(
                *d >= nominal * 0.5 && *d < nominal * 1.5,
                "delay {d} outside jitter bounds of nominal {nominal}"
            );
        }
        // Same seed, same stream: the schedule reproduces exactly.
        let (_, delays2) = mk();
        assert_eq!(delays, delays2, "jitter must be deterministic per seed");
    }

    #[test]
    fn fatal_errors_propagate_without_retry() {
        let b = RetryBackend::with_defaults(inner());
        let err = b.scan_column(&ColumnRef::new("db", "t", "nope"), SampleSpec::Full).unwrap_err();
        assert!(matches!(err, StoreError::NotFound(_)), "unexpected: {err:?}");
        assert_eq!(b.retries(), 0, "fatal errors must not burn retries");
        assert_eq!(b.costs().virtual_secs, 0.0);
    }

    #[test]
    fn max_attempts_one_returns_the_bare_error() {
        let flaky: BackendHandle = Arc::new(FaultInjector::new(inner(), FaultPlan::fail_every(1)));
        let b = RetryBackend::new(flaky, RetryPolicy::none());
        let err = b.scan_column(&ColumnRef::new("db", "t", "a"), SampleSpec::Full).unwrap_err();
        assert!(matches!(err, StoreError::Unavailable(_)), "unexpected: {err:?}");
    }

    #[test]
    fn transparent_when_inner_never_fails() {
        let b = RetryBackend::with_defaults(inner());
        let r = ColumnRef::new("db", "t", "a");
        for _ in 0..5 {
            b.scan_column(&r, SampleSpec::Full).unwrap();
        }
        let c = b.costs();
        assert_eq!(c.requests, 5, "inner billing passes through");
        assert_eq!(c.retries, 0);
        assert_eq!(b.list_tables().unwrap().len(), 1);
        assert!(b.validate_column(&r).is_ok());
        b.reset_costs();
        assert_eq!(b.costs(), CostSnapshot::default());
    }

    /// Metadata calls retry too: a backend whose list_tables fails once.
    struct FlakyCatalog {
        inner: BackendHandle,
        remaining_failures: AtomicU64,
    }

    impl WarehouseBackend for FlakyCatalog {
        fn name(&self) -> String {
            "flaky-catalog".into()
        }
        fn list_tables(&self) -> StoreResult<Vec<TableMeta>> {
            if self.remaining_failures.load(Ordering::Relaxed) > 0 {
                self.remaining_failures.fetch_sub(1, Ordering::Relaxed);
                return Err(StoreError::Unavailable("catalog flap".into()));
            }
            self.inner.list_tables()
        }
        fn table_meta(&self, database: &str, table: &str) -> StoreResult<TableMeta> {
            self.inner.table_meta(database, table)
        }
        fn scan_column(&self, r: &ColumnRef, sample: SampleSpec) -> StoreResult<Column> {
            self.inner.scan_column(r, sample)
        }
        fn scan_table(
            &self,
            database: &str,
            table: &str,
            sample: SampleSpec,
        ) -> StoreResult<Table> {
            self.inner.scan_table(database, table, sample)
        }
        fn costs(&self) -> CostSnapshot {
            self.inner.costs()
        }
        fn reset_costs(&self) {
            self.inner.reset_costs()
        }
    }

    #[test]
    fn metadata_calls_are_retried() {
        let flaky =
            Arc::new(FlakyCatalog { inner: inner(), remaining_failures: AtomicU64::new(2) });
        let b = RetryBackend::new(flaky, RetryPolicy::default());
        let metas = b.list_tables().expect("two flaps fit in a 4-attempt budget");
        assert_eq!(metas.len(), 1);
        assert_eq!(b.retries(), 2);
    }
}
