//! Wire-protocol remote backend: serve any [`WarehouseBackend`] over TCP
//! and consume it from another process (or machine) through the same
//! trait.
//!
//! WarpGate is pitched as a *cloud* service: the discovery node and the
//! warehouse it indexes usually do not share a process. This module closes
//! that gap with a deliberately small binary RPC protocol built on the
//! workspace's composite-frame codec ([`wg_util::codec`]) — the same
//! length-prefixed primitives the simulated CDW already uses for scan
//! round trips, now framed onto a socket.
//!
//! ## Frame layout (WGRP v1)
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! u32 payload_len (LE) | payload
//! payload := "WGRP" magic | u32 version | body
//! request body  := u8 opcode | operands…
//! response body := u8 status (0 = ok, 1 = err) | result | encoded StoreError
//! ```
//!
//! Operands and results reuse the codec's length-prefixed strings and the
//! store's existing column wire form ([`Column::encode`]); see the opcode
//! table in [`op`]. Decoding is bounds-checked end to end: a corrupt or
//! truncated frame yields [`StoreError::Codec`], never a panic.
//!
//! ### Request context extension (still v1)
//!
//! A request may prefix its opcode with [`op::WITH_CONTEXT`], carrying a
//! deadline budget and a tenant token:
//!
//! ```text
//! u8 WITH_CONTEXT | u64 remaining_ms | str tenant | u8 inner_opcode | operands…
//! ```
//!
//! `remaining_ms` is the client's deadline budget left at send time
//! (`u64::MAX` = no deadline, `0` = already expired — the server sheds it
//! before touching the backend); an empty tenant string means anonymous.
//! Requests without the wrapper are byte-identical to the original v1
//! frames, so old clients and new servers (and vice versa, as long as the
//! context is unused) interoperate unchanged.
//!
//! ## Overload protection
//!
//! The server bounds its own resources instead of trusting clients: a
//! connection cap (excess connections get one typed, *retryable*
//! [`StoreError::Overloaded`] frame and are closed — never a silent hang),
//! an optional in-flight request cap enforced the same way, write timeouts
//! so a hung reader cannot pin a handler thread, and expired-deadline
//! shedding before any billed backend work. See [`RemoteServerConfig`].
//!
//! ## Failure semantics
//!
//! Transport failures (connect refused, reset, timeout) surface as
//! [`StoreError::Unavailable`] — *retryable*, so the canonical resilient
//! stack is `RetryBackend(RemoteBackend)`: the client drops its pooled
//! connection on any I/O error and the next attempt reconnects. Errors the
//! *server's* backend returns (e.g. [`StoreError::NotFound`]) are encoded
//! and re-raised on the client unchanged, so remote and in-process
//! backends are indistinguishable to callers — the loopback parity suite
//! pins this.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use wg_util::codec::{
    get_len, get_str, get_u32, get_u64, get_u8, put_f64, put_len, put_str, put_u32, put_u64,
    put_u8, CodecError, CodecResult,
};
use wg_util::deadline::{Deadline, Phase};
use wg_util::FxHashMap;

use crate::backend::{BackendHandle, TableMeta, TableVersion, WarehouseBackend};
use crate::catalog::ColumnRef;
use crate::cdw::CostSnapshot;
use crate::column::Column;
use crate::error::{StoreError, StoreResult};
use crate::sample::SampleSpec;
use crate::table::Table;

/// Protocol magic + version.
const MAGIC: [u8; 4] = *b"WGRP";
const VERSION: u32 = 1;

/// Largest accepted frame (64 MiB): far above any sampled scan, far below
/// anything that suggests a healthy peer.
const MAX_FRAME: usize = 64 << 20;

/// How long the client waits for a response before declaring the link
/// dead. Scans in this workspace complete in milliseconds; 30 s is "the
/// peer is gone", not "the peer is slow".
const CLIENT_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Poll interval at which server threads re-check the shutdown flag while
/// blocked on I/O.
const SERVER_POLL: Duration = Duration::from_millis(25);

/// Request opcodes. One per [`WarehouseBackend`] method.
mod op {
    pub const NAME: u8 = 1;
    pub const LIST_TABLES: u8 = 2;
    pub const TABLE_META: u8 = 3;
    pub const SCAN_COLUMN: u8 = 4;
    pub const SCAN_TABLE: u8 = 5;
    pub const COSTS: u8 = 6;
    pub const RESET_COSTS: u8 = 7;
    pub const VALIDATE_COLUMN: u8 = 8;
    pub const SNAPSHOT_VERSIONS: u8 = 9;
    /// Not a backend method: wraps an inner opcode with a deadline budget
    /// and tenant token. See "Request context extension" in the module
    /// docs.
    pub const WITH_CONTEXT: u8 = 10;
}

// ---------------------------------------------------------------------------
// Wire codecs for the protocol's composite types.

fn put_column_ref(buf: &mut Vec<u8>, r: &ColumnRef) {
    put_str(buf, &r.database);
    put_str(buf, &r.table);
    put_str(buf, &r.column);
}

fn get_column_ref(buf: &mut &[u8]) -> CodecResult<ColumnRef> {
    // WGRP addresses are backend-relative by design: the server serves ONE
    // backend and must not care which namespace the caller attached it
    // under, so the wire carries no backend name and refs land in the
    // default namespace on both sides.
    Ok(ColumnRef::new(get_str(buf)?, get_str(buf)?, get_str(buf)?))
}

fn put_table_meta(buf: &mut Vec<u8>, m: &TableMeta) {
    put_str(buf, &m.database);
    put_str(buf, &m.table);
    put_len(buf, m.columns.len());
    for c in &m.columns {
        put_str(buf, c);
    }
    put_u64(buf, m.version);
}

fn get_table_meta(buf: &mut &[u8]) -> CodecResult<TableMeta> {
    let database = get_str(buf)?;
    let table = get_str(buf)?;
    let n = get_len(buf)?;
    let mut columns = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        columns.push(get_str(buf)?);
    }
    Ok(TableMeta { database, table, columns, version: get_u64(buf)? })
}

fn put_cost_snapshot(buf: &mut Vec<u8>, c: &CostSnapshot) {
    put_u64(buf, c.requests);
    put_u64(buf, c.bytes_scanned);
    put_f64(buf, c.virtual_secs);
    put_f64(buf, c.usd);
    put_u64(buf, c.retries);
}

fn get_cost_snapshot(buf: &mut &[u8]) -> CodecResult<CostSnapshot> {
    Ok(CostSnapshot {
        requests: get_u64(buf)?,
        bytes_scanned: get_u64(buf)?,
        virtual_secs: wg_util::codec::get_f64(buf)?,
        usd: wg_util::codec::get_f64(buf)?,
        retries: get_u64(buf)?,
    })
}

/// Encode a [`StoreError`] for the error branch of a response. Exhaustive
/// on purpose: a new error variant fails compilation here until it gets a
/// wire tag.
fn put_store_error(buf: &mut Vec<u8>, e: &StoreError) {
    match e {
        StoreError::NotFound(m) => {
            put_u8(buf, 0);
            put_str(buf, m);
        }
        StoreError::Csv { line, message } => {
            put_u8(buf, 1);
            put_u64(buf, *line as u64);
            put_str(buf, message);
        }
        StoreError::Schema(m) => {
            put_u8(buf, 2);
            put_str(buf, m);
        }
        StoreError::Join(m) => {
            put_u8(buf, 3);
            put_str(buf, m);
        }
        StoreError::Codec(c) => {
            put_u8(buf, 4);
            put_str(buf, &c.to_string());
        }
        StoreError::Backend(m) => {
            put_u8(buf, 5);
            put_str(buf, m);
        }
        StoreError::Unavailable(m) => {
            put_u8(buf, 6);
            put_str(buf, m);
        }
        StoreError::RetriesExhausted { attempts, last } => {
            put_u8(buf, 7);
            put_u32(buf, *attempts);
            put_store_error(buf, last);
        }
        StoreError::SnapshotCorrupt(m) => {
            put_u8(buf, 8);
            put_str(buf, m);
        }
        StoreError::Overloaded { retry_after_ms } => {
            put_u8(buf, 9);
            put_u64(buf, *retry_after_ms);
        }
        StoreError::QuotaExceeded { tenant } => {
            put_u8(buf, 10);
            put_str(buf, tenant);
        }
        StoreError::DeadlineExceeded { phase } => {
            put_u8(buf, 11);
            put_u8(buf, phase.to_wire());
        }
    }
}

fn get_store_error(buf: &mut &[u8]) -> CodecResult<StoreError> {
    Ok(match get_u8(buf)? {
        0 => StoreError::NotFound(get_str(buf)?),
        1 => {
            let line = get_u64(buf)? as usize;
            StoreError::Csv { line, message: get_str(buf)? }
        }
        2 => StoreError::Schema(get_str(buf)?),
        3 => StoreError::Join(get_str(buf)?),
        // The inner CodecError's structure is not worth carrying across
        // the wire; its message is.
        4 => StoreError::Codec(CodecError::Invalid(get_str(buf)?)),
        5 => StoreError::Backend(get_str(buf)?),
        6 => StoreError::Unavailable(get_str(buf)?),
        7 => {
            let attempts = get_u32(buf)?;
            let last = get_store_error(buf)?;
            StoreError::RetriesExhausted { attempts, last: Box::new(last) }
        }
        8 => StoreError::SnapshotCorrupt(get_str(buf)?),
        9 => StoreError::Overloaded { retry_after_ms: get_u64(buf)? },
        10 => StoreError::QuotaExceeded { tenant: get_str(buf)? },
        11 => {
            let tag = get_u8(buf)?;
            let phase = Phase::from_wire(tag)
                .ok_or_else(|| CodecError::Invalid(format!("unknown deadline phase {tag}")))?;
            StoreError::DeadlineExceeded { phase }
        }
        tag => return Err(CodecError::Invalid(format!("unknown StoreError tag {tag}"))),
    })
}

fn put_table(buf: &mut Vec<u8>, t: &Table) {
    put_str(buf, t.name());
    put_len(buf, t.num_columns());
    for c in t.columns() {
        c.encode(buf);
    }
}

fn get_table(buf: &mut &[u8]) -> StoreResult<Table> {
    let name = get_str(buf)?;
    let n = get_len(buf)?;
    let mut cols = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        cols.push(Column::decode(buf)?);
    }
    Table::new(name, cols)
}

// ---------------------------------------------------------------------------
// Framing.

fn payload_header(buf: &mut Vec<u8>) {
    wg_util::codec::put_header(buf, MAGIC, VERSION);
}

fn check_payload_header(buf: &mut &[u8]) -> CodecResult<()> {
    let version = wg_util::codec::get_header(buf, MAGIC)?;
    if version != VERSION {
        return Err(CodecError::Invalid(format!("unsupported WGRP version {version}")));
    }
    Ok(())
}

fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> std::io::Result<()> {
    let mut frame = Vec::with_capacity(payload.len() + 4);
    put_u32(&mut frame, payload.len() as u32);
    frame.extend_from_slice(payload);
    stream.write_all(&frame)?;
    stream.flush()
}

/// Read exactly `buf.len()` bytes, tolerating read-timeout wakeups so the
/// server can poll its shutdown flag. Returns `Ok(false)` on a clean EOF
/// *before the first byte* (peer closed between frames) and when `stop`
/// was raised; `Ok(true)` when the buffer was filled.
fn read_exact_poll(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: Option<&AtomicBool>,
) -> std::io::Result<bool> {
    let mut filled = 0usize;
    while filled < buf.len() {
        if let Some(stop) = stop {
            if stop.load(Ordering::Relaxed) {
                return Ok(false);
            }
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            Ok(n) => filled += n,
            Err(e)
                if stop.is_some()
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                // Server poll tick: loop to re-check the stop flag.
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Read one frame. `Ok(None)` means clean end of stream (or shutdown).
fn read_frame(
    stream: &mut TcpStream,
    stop: Option<&AtomicBool>,
) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    if !read_exact_poll(stream, &mut len_bytes, stop)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    if !read_exact_poll(stream, &mut payload, stop)? {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed mid-frame",
        ));
    }
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Server.

/// Resource bounds of a [`RemoteBackendServer`]. The defaults protect the
/// server out of the box: before this config existed the accept loop
/// spawned one unbounded handler thread per connection, so any client
/// storm (or leak) exhausted server threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteServerConfig {
    /// Concurrent connections served (each holds one handler thread).
    /// Excess connections receive one [`StoreError::Overloaded`] frame and
    /// are closed. `0` = unbounded (the pre-cap behavior; discouraged).
    pub max_connections: usize,
    /// Requests executing against the backend at once, across all
    /// connections. Excess requests are answered with
    /// [`StoreError::Overloaded`] without touching the backend. `0` =
    /// unbounded.
    pub max_in_flight: usize,
    /// Write timeout per response frame, so a hung or slow-reading client
    /// cannot pin a handler thread. Zero = no timeout.
    pub write_timeout: Duration,
    /// Backoff hint carried inside the `Overloaded` errors this server
    /// sheds with.
    pub retry_after_ms: u64,
}

impl Default for RemoteServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            max_in_flight: 0,
            write_timeout: Duration::from_secs(5),
            retry_after_ms: 50,
        }
    }
}

/// Monotonic shedding counters of a running server (see
/// [`RemoteBackendServer::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RemoteServerStats {
    /// Connections currently served.
    pub live_connections: usize,
    /// Connections refused at the cap with an `Overloaded` frame.
    pub shed_connections: u64,
    /// Requests refused at the in-flight cap with an `Overloaded` frame.
    pub shed_requests: u64,
    /// Requests shed because their carried deadline was already expired.
    pub deadline_shed: u64,
}

/// State shared between the accept loop and every handler thread.
struct ServerShared {
    config: RemoteServerConfig,
    live_connections: AtomicUsize,
    in_flight: AtomicUsize,
    shed_connections: AtomicU64,
    shed_requests: AtomicU64,
    deadline_shed: AtomicU64,
    /// Requests per tenant token seen in [`op::WITH_CONTEXT`] frames.
    tenant_requests: Mutex<FxHashMap<String, u64>>,
}

impl ServerShared {
    fn new(config: RemoteServerConfig) -> Self {
        Self {
            config,
            live_connections: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            shed_connections: AtomicU64::new(0),
            shed_requests: AtomicU64::new(0),
            deadline_shed: AtomicU64::new(0),
            tenant_requests: Mutex::new(FxHashMap::default()),
        }
    }
}

/// RAII slot in the in-flight request budget; acquiring fails with
/// `Overloaded` at the cap.
struct InFlightPermit<'a>(&'a AtomicUsize);

impl<'a> InFlightPermit<'a> {
    fn acquire(shared: &'a ServerShared) -> StoreResult<Self> {
        let cap = shared.config.max_in_flight;
        let occupied = shared.in_flight.fetch_add(1, Ordering::AcqRel);
        if cap > 0 && occupied >= cap {
            shared.in_flight.fetch_sub(1, Ordering::AcqRel);
            shared.shed_requests.fetch_add(1, Ordering::Relaxed);
            return Err(StoreError::Overloaded { retry_after_ms: shared.config.retry_after_ms });
        }
        Ok(Self(&shared.in_flight))
    }
}

impl Drop for InFlightPermit<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Decrements the live-connection count when a handler exits, however it
/// exits.
struct ConnectionGuard<'a>(&'a AtomicUsize);

impl Drop for ConnectionGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Serves a local [`WarehouseBackend`] to [`RemoteBackend`] clients over
/// TCP. One thread accepts connections; each connection gets a handler
/// thread answering requests until the client disconnects or the server
/// shuts down. Connection count, in-flight requests and response writes
/// are all bounded — see [`RemoteServerConfig`].
pub struct RemoteBackendServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shared: Arc<ServerShared>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for RemoteBackendServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteBackendServer").field("addr", &self.addr).finish_non_exhaustive()
    }
}

impl RemoteBackendServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `backend` with the default [`RemoteServerConfig`] bounds. Returns
    /// once the listener is live — a client may connect immediately.
    pub fn serve(backend: BackendHandle, addr: impl ToSocketAddrs) -> StoreResult<Self> {
        Self::serve_with(backend, addr, RemoteServerConfig::default())
    }

    /// [`Self::serve`] with explicit resource bounds.
    pub fn serve_with(
        backend: BackendHandle,
        addr: impl ToSocketAddrs,
        config: RemoteServerConfig,
    ) -> StoreResult<Self> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| StoreError::Backend(format!("remote server bind: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| StoreError::Backend(format!("remote server nonblocking: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| StoreError::Backend(format!("remote server local_addr: {e}")))?;
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(ServerShared::new(config));
        let accept_stop = stop.clone();
        let accept_shared = shared.clone();
        let accept_handle = std::thread::spawn(move || {
            let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
            while !accept_stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((mut stream, _peer)) => {
                        let cap = accept_shared.config.max_connections;
                        if cap > 0 && accept_shared.live_connections.load(Ordering::Acquire) >= cap
                        {
                            // The cap protects handler threads, the one
                            // truly finite resource here. The refused
                            // client gets a typed, retryable answer —
                            // never a hang or a silent close.
                            accept_shared.shed_connections.fetch_add(1, Ordering::Relaxed);
                            refuse_connection(&mut stream, &accept_shared.config);
                            continue;
                        }
                        accept_shared.live_connections.fetch_add(1, Ordering::AcqRel);
                        let backend = backend.clone();
                        let stop = accept_stop.clone();
                        let shared = accept_shared.clone();
                        handlers.push(std::thread::spawn(move || {
                            let _guard = ConnectionGuard(&shared.live_connections);
                            serve_connection(stream, backend, &stop, &shared);
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(SERVER_POLL);
                    }
                    Err(_) => std::thread::sleep(SERVER_POLL),
                }
                handlers.retain(|h| !h.is_finished());
            }
            for h in handlers {
                let _ = h.join();
            }
        });
        Ok(Self { addr: local, stop, shared, accept_handle: Some(accept_handle) })
    }

    /// The address the server actually listens on (resolves ephemeral
    /// ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live-connection gauge and monotonic shedding counters.
    pub fn stats(&self) -> RemoteServerStats {
        RemoteServerStats {
            live_connections: self.shared.live_connections.load(Ordering::Acquire),
            shed_connections: self.shared.shed_connections.load(Ordering::Relaxed),
            shed_requests: self.shared.shed_requests.load(Ordering::Relaxed),
            deadline_shed: self.shared.deadline_shed.load(Ordering::Relaxed),
        }
    }

    /// Requests served per tenant token (from [`op::WITH_CONTEXT`]
    /// frames), in descending request order then tenant order.
    pub fn tenant_requests(&self) -> Vec<(String, u64)> {
        let map = self.shared.tenant_requests.lock();
        let mut out: Vec<(String, u64)> = map.iter().map(|(k, v)| (k.clone(), *v)).collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Stop accepting, wake blocked handler threads, and join them all.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RemoteBackendServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Refuse an over-cap connection: answer whatever the client is about to
/// send (usually the connect handshake) with one `Overloaded` frame, then
/// drop the stream. Best-effort — the client may already be gone.
fn refuse_connection(stream: &mut TcpStream, config: &RemoteServerConfig) {
    let _ = stream.set_nodelay(true);
    if !config.write_timeout.is_zero() {
        let _ = stream.set_write_timeout(Some(config.write_timeout));
    }
    let mut buf = Vec::with_capacity(32);
    payload_header(&mut buf);
    put_u8(&mut buf, 1);
    put_store_error(&mut buf, &StoreError::Overloaded { retry_after_ms: config.retry_after_ms });
    let _ = write_frame(stream, &buf);
}

/// One connection's request loop.
fn serve_connection(
    mut stream: TcpStream,
    backend: BackendHandle,
    stop: &AtomicBool,
    shared: &ServerShared,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(SERVER_POLL));
    if !shared.config.write_timeout.is_zero() {
        // A hung client that stops reading must not pin this handler
        // forever: the blocked response write errors out instead.
        let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    }
    loop {
        let payload = match read_frame(&mut stream, Some(stop)) {
            Ok(Some(p)) => p,
            // Clean disconnect, shutdown, or a broken peer: either way the
            // connection is done.
            Ok(None) | Err(_) => return,
        };
        let response = handle_request(&payload, backend.as_ref(), shared);
        if write_frame(&mut stream, &response).is_err() {
            return;
        }
    }
}

/// Decode one request payload, run it against `backend`, encode the
/// response payload.
fn handle_request(
    payload: &[u8],
    backend: &dyn WarehouseBackend,
    shared: &ServerShared,
) -> Vec<u8> {
    match try_handle_request(payload, backend, shared) {
        Ok(ok_body) => ok_body,
        Err(e) => {
            let mut buf = Vec::with_capacity(64);
            payload_header(&mut buf);
            put_u8(&mut buf, 1);
            put_store_error(&mut buf, &e);
            buf
        }
    }
}

fn try_handle_request(
    payload: &[u8],
    backend: &dyn WarehouseBackend,
    shared: &ServerShared,
) -> StoreResult<Vec<u8>> {
    let mut cursor = payload;
    check_payload_header(&mut cursor)?;
    let mut opcode = get_u8(&mut cursor)?;
    if opcode == op::WITH_CONTEXT {
        let remaining_ms = get_u64(&mut cursor)?;
        let tenant = get_str(&mut cursor)?;
        if !tenant.is_empty() {
            *shared.tenant_requests.lock().entry(tenant).or_insert(0) += 1;
        }
        if remaining_ms == 0 {
            // The client's budget was spent before the frame even landed:
            // shed before any billed backend work.
            shared.deadline_shed.fetch_add(1, Ordering::Relaxed);
            return Err(StoreError::DeadlineExceeded { phase: Phase::Validate });
        }
        opcode = get_u8(&mut cursor)?;
    }
    // One slot in the in-flight budget for the duration of the dispatch.
    let _permit = InFlightPermit::acquire(shared)?;
    let mut buf = Vec::with_capacity(256);
    payload_header(&mut buf);
    put_u8(&mut buf, 0);
    match opcode {
        op::NAME => put_str(&mut buf, &backend.name()),
        op::LIST_TABLES => {
            let metas = backend.list_tables()?;
            put_len(&mut buf, metas.len());
            for m in &metas {
                put_table_meta(&mut buf, m);
            }
        }
        op::TABLE_META => {
            let database = get_str(&mut cursor)?;
            let table = get_str(&mut cursor)?;
            put_table_meta(&mut buf, &backend.table_meta(&database, &table)?);
        }
        op::SCAN_COLUMN => {
            let r = get_column_ref(&mut cursor)?;
            let sample = SampleSpec::decode(&mut cursor)?;
            backend.scan_column(&r, sample)?.encode(&mut buf);
        }
        op::SCAN_TABLE => {
            let database = get_str(&mut cursor)?;
            let table = get_str(&mut cursor)?;
            let sample = SampleSpec::decode(&mut cursor)?;
            put_table(&mut buf, &backend.scan_table(&database, &table, sample)?);
        }
        op::COSTS => put_cost_snapshot(&mut buf, &backend.costs()),
        op::RESET_COSTS => backend.reset_costs(),
        op::VALIDATE_COLUMN => {
            let r = get_column_ref(&mut cursor)?;
            backend.validate_column(&r)?;
        }
        op::SNAPSHOT_VERSIONS => {
            let versions = backend.snapshot_versions()?;
            put_len(&mut buf, versions.len());
            for v in &versions {
                put_str(&mut buf, &v.database);
                put_str(&mut buf, &v.table);
                put_u64(&mut buf, v.version);
            }
        }
        other => {
            return Err(StoreError::Codec(CodecError::Invalid(format!("unknown opcode {other}"))))
        }
    }
    Ok(buf)
}

// ---------------------------------------------------------------------------
// Client.

/// A [`WarehouseBackend`] whose warehouse lives behind a
/// [`RemoteBackendServer`]. One pooled connection, lazily (re)established;
/// any transport failure drops it and surfaces as the *retryable*
/// [`StoreError::Unavailable`], so `RetryBackend(RemoteBackend)` rides out
/// flaky links and server restarts transparently.
pub struct RemoteBackend {
    addr: String,
    /// Server-reported backend name, fetched at connect time.
    remote_name: String,
    /// Optional per-request context (tenant token + deadline budget);
    /// when either is set, requests are wrapped in [`op::WITH_CONTEXT`].
    context: Mutex<RequestContext>,
    conn: Mutex<Option<TcpStream>>,
    /// Last successfully fetched cost snapshot. Served when a `COSTS` RPC
    /// fails: the server meter is monotonic between resets, so a stale
    /// reading keeps `CostSnapshot::since` deltas bounded by the
    /// unobserved window — an all-zero answer would instead attribute the
    /// server's whole metering history to the next delta.
    last_costs: Mutex<CostSnapshot>,
}

/// The optional WGRP request context a [`RemoteBackend`] attaches to its
/// frames.
#[derive(Debug, Clone, Default)]
struct RequestContext {
    tenant: Option<String>,
    deadline: Deadline,
}

impl std::fmt::Debug for RemoteBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteBackend")
            .field("addr", &self.addr)
            .field("remote_name", &self.remote_name)
            .finish_non_exhaustive()
    }
}

impl RemoteBackend {
    /// Connect to a [`RemoteBackendServer`] at `addr` (e.g.
    /// `"127.0.0.1:7878"`). Fails with [`StoreError::Unavailable`] if the
    /// server is unreachable.
    pub fn connect(addr: impl Into<String>) -> StoreResult<Self> {
        let backend = Self {
            addr: addr.into(),
            remote_name: String::new(),
            context: Mutex::new(RequestContext::default()),
            conn: Mutex::new(None),
            last_costs: Mutex::new(CostSnapshot::default()),
        };
        // Eagerly verify the link and learn the served backend's name.
        let mut buf = Vec::with_capacity(16);
        payload_header(&mut buf);
        put_u8(&mut buf, op::NAME);
        let resp = backend.roundtrip(&buf)?;
        let name = get_str(&mut resp.as_slice())
            .map_err(|e| StoreError::Unavailable(format!("remote handshake: {e}")))?;
        Ok(Self { remote_name: name, ..backend })
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Tenant token carried in every subsequent request (`None` clears
    /// it). The server accounts requests per token; quota policies key
    /// off the same name.
    pub fn set_tenant(&self, tenant: Option<String>) {
        self.context.lock().tenant = tenant;
    }

    /// Deadline budget carried in every subsequent request as the
    /// *remaining* milliseconds at send time ([`Deadline::none`] clears
    /// it). An already-expired budget is shed by the server before any
    /// billed work.
    pub fn set_deadline(&self, deadline: Deadline) {
        self.context.lock().deadline = deadline;
    }

    fn unavailable(&self, context: &str, e: impl std::fmt::Display) -> StoreError {
        StoreError::Unavailable(format!("remote backend {}: {context}: {e}", self.addr))
    }

    /// Send one request payload, return the response *result* bytes (header
    /// and status stripped, server-side errors re-raised). Drops the pooled
    /// connection on any transport failure so the next call reconnects.
    fn roundtrip(&self, request: &[u8]) -> StoreResult<Vec<u8>> {
        let mut guard = self.conn.lock();
        if guard.is_none() {
            let stream =
                TcpStream::connect(&self.addr).map_err(|e| self.unavailable("connect", e))?;
            let _ = stream.set_nodelay(true);
            stream
                .set_read_timeout(Some(CLIENT_IO_TIMEOUT))
                .map_err(|e| self.unavailable("configure", e))?;
            stream
                .set_write_timeout(Some(CLIENT_IO_TIMEOUT))
                .map_err(|e| self.unavailable("configure", e))?;
            *guard = Some(stream);
        }
        let stream = guard.as_mut().expect("connection just ensured");
        let outcome = write_frame(stream, request).and_then(|()| read_frame(stream, None));
        let payload = match outcome {
            Ok(Some(p)) => p,
            Ok(None) => {
                *guard = None;
                return Err(self.unavailable("read", "server closed the connection"));
            }
            Err(e) => {
                *guard = None;
                return Err(self.unavailable("io", e));
            }
        };
        drop(guard);
        let mut cursor = &payload[..];
        check_payload_header(&mut cursor)?;
        match get_u8(&mut cursor)? {
            0 => Ok(cursor.to_vec()),
            1 => Err(get_store_error(&mut cursor)?),
            other => Err(StoreError::Codec(CodecError::Invalid(format!(
                "unknown response status {other}"
            )))),
        }
    }

    fn request(&self, opcode: u8, operands: impl FnOnce(&mut Vec<u8>)) -> StoreResult<Vec<u8>> {
        let mut buf = Vec::with_capacity(128);
        payload_header(&mut buf);
        {
            let ctx = self.context.lock();
            if ctx.tenant.is_some() || ctx.deadline.is_some() {
                put_u8(&mut buf, op::WITH_CONTEXT);
                let remaining_ms = match ctx.deadline.remaining() {
                    None => u64::MAX,
                    Some(left) => u64::try_from(left.as_millis()).unwrap_or(u64::MAX),
                };
                put_u64(&mut buf, remaining_ms);
                put_str(&mut buf, ctx.tenant.as_deref().unwrap_or(""));
            }
        }
        put_u8(&mut buf, opcode);
        operands(&mut buf);
        self.roundtrip(&buf)
    }
}

impl WarehouseBackend for RemoteBackend {
    fn name(&self) -> String {
        format!("remote:{}", self.remote_name)
    }

    fn list_tables(&self) -> StoreResult<Vec<TableMeta>> {
        let body = self.request(op::LIST_TABLES, |_| {})?;
        let mut cursor = &body[..];
        let n = get_len(&mut cursor)?;
        let mut metas = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            metas.push(get_table_meta(&mut cursor)?);
        }
        Ok(metas)
    }

    fn table_meta(&self, database: &str, table: &str) -> StoreResult<TableMeta> {
        let body = self.request(op::TABLE_META, |buf| {
            put_str(buf, database);
            put_str(buf, table);
        })?;
        Ok(get_table_meta(&mut &body[..])?)
    }

    fn scan_column(&self, r: &ColumnRef, sample: SampleSpec) -> StoreResult<Column> {
        let body = self.request(op::SCAN_COLUMN, |buf| {
            put_column_ref(buf, r);
            sample.encode(buf);
        })?;
        Ok(Column::decode(&mut &body[..])?)
    }

    fn scan_table(&self, database: &str, table: &str, sample: SampleSpec) -> StoreResult<Table> {
        let body = self.request(op::SCAN_TABLE, |buf| {
            put_str(buf, database);
            put_str(buf, table);
            sample.encode(buf);
        })?;
        get_table(&mut &body[..])
    }

    fn costs(&self) -> CostSnapshot {
        // The trait's cost surface is infallible; an unreachable server
        // answers with the last snapshot this client saw (see
        // `last_costs` — a zero answer would corrupt `since` deltas).
        match self
            .request(op::COSTS, |_| {})
            .and_then(|body| Ok(get_cost_snapshot(&mut &body[..])?))
        {
            Ok(fresh) => {
                *self.last_costs.lock() = fresh;
                fresh
            }
            Err(_) => *self.last_costs.lock(),
        }
    }

    fn reset_costs(&self) {
        if self.request(op::RESET_COSTS, |_| {}).is_ok() {
            *self.last_costs.lock() = CostSnapshot::default();
        }
    }

    fn validate_column(&self, r: &ColumnRef) -> StoreResult<()> {
        self.request(op::VALIDATE_COLUMN, |buf| put_column_ref(buf, r)).map(|_| ())
    }

    fn snapshot_versions(&self) -> StoreResult<Vec<TableVersion>> {
        let body = self.request(op::SNAPSHOT_VERSIONS, |_| {})?;
        let mut cursor = &body[..];
        let n = get_len(&mut cursor)?;
        let mut versions = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            versions.push(TableVersion {
                database: get_str(&mut cursor)?,
                table: get_str(&mut cursor)?,
                version: get_u64(&mut cursor)?,
            });
        }
        Ok(versions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Database, Warehouse};
    use crate::cdw::{CdwConfig, CdwConnector};

    fn local_backend() -> BackendHandle {
        let mut w = Warehouse::new("served");
        let mut db = Database::new("db");
        db.add_table(
            Table::new(
                "t",
                vec![
                    Column::text("a", (0..30).map(|i| format!("v{i}")).collect::<Vec<_>>()),
                    Column::ints("b", (0..30).collect()),
                ],
            )
            .unwrap(),
        );
        db.add_table(Table::new("u", vec![Column::floats("x", vec![1.5, 2.5, 3.5])]).unwrap());
        w.add_database(db);
        Arc::new(CdwConnector::new(w, CdwConfig::free()))
    }

    fn loopback() -> (RemoteBackendServer, RemoteBackend, BackendHandle) {
        let local = local_backend();
        let server = RemoteBackendServer::serve(local.clone(), "127.0.0.1:0").unwrap();
        let client = RemoteBackend::connect(server.local_addr().to_string()).unwrap();
        (server, client, local)
    }

    #[test]
    fn full_surface_matches_local_backend() {
        let (server, remote, local) = loopback();
        assert_eq!(remote.name(), "remote:served");

        assert_eq!(remote.list_tables().unwrap(), local.list_tables().unwrap());
        assert_eq!(remote.table_meta("db", "t").unwrap(), local.table_meta("db", "t").unwrap());
        assert_eq!(remote.snapshot_versions().unwrap(), local.snapshot_versions().unwrap());

        let r = ColumnRef::new("db", "t", "a");
        assert!(remote.validate_column(&r).is_ok());
        assert!(matches!(
            remote.validate_column(&ColumnRef::new("db", "t", "nope")),
            Err(StoreError::NotFound(_))
        ));

        // A deterministic sample scans identically through the wire.
        let spec = SampleSpec::DistinctReservoir { n: 10, seed: 7 };
        let via_remote = remote.scan_column(&r, spec).unwrap();
        let via_local = local.scan_column(&r, spec).unwrap();
        assert_eq!(via_remote.len(), via_local.len());
        for i in 0..via_remote.len() {
            assert_eq!(via_remote.get(i).to_string(), via_local.get(i).to_string());
        }

        let t = remote.scan_table("db", "t", SampleSpec::Head(5)).unwrap();
        assert_eq!(t.num_rows(), 5);
        assert_eq!(t.num_columns(), 2);

        // Costs meter on the server side, visible through the client.
        let c = remote.costs();
        assert!(c.requests >= 3, "server-side billing missing: {c:?}");
        remote.reset_costs();
        assert_eq!(remote.costs().requests, 0);
        server.shutdown();
    }

    #[test]
    fn server_side_errors_reraise_on_the_client() {
        let (server, remote, _local) = loopback();
        let err = remote.scan_column(&ColumnRef::new("db", "nope", "c"), SampleSpec::Full);
        assert!(matches!(err, Err(StoreError::NotFound(_))), "got {err:?}");
        let err = remote.scan_table("db", "missing", SampleSpec::Full);
        assert!(matches!(err, Err(StoreError::NotFound(_))), "got {err:?}");
        server.shutdown();
    }

    #[test]
    fn unreachable_server_is_retryable_unavailable() {
        // Grab an ephemeral port, then close the listener: nothing listens.
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let err = RemoteBackend::connect(format!("127.0.0.1:{port}")).unwrap_err();
        assert!(err.is_retryable(), "transport failures must be retryable: {err:?}");
    }

    #[test]
    fn client_reconnects_after_server_restart() {
        let local = local_backend();
        let server = RemoteBackendServer::serve(local.clone(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let remote = RemoteBackend::connect(addr.to_string()).unwrap();
        assert_eq!(remote.list_tables().unwrap().len(), 2);

        // Kill the server: the next call fails with a retryable error.
        server.shutdown();
        let err = remote.list_tables().unwrap_err();
        assert!(err.is_retryable(), "dead link must be retryable: {err:?}");

        // Restart on the same port; the pooled connection was dropped, so
        // the next call transparently reconnects.
        let server = RemoteBackendServer::serve(local, addr).unwrap();
        assert_eq!(remote.list_tables().unwrap().len(), 2);
        server.shutdown();
    }

    #[test]
    fn costs_survive_a_dead_server_as_the_last_known_snapshot() {
        let (server, remote, _local) = loopback();
        remote.scan_column(&ColumnRef::new("db", "t", "a"), SampleSpec::Full).unwrap();
        let live = remote.costs();
        assert!(live.requests >= 1);
        server.shutdown();
        // A zero answer here would make `since(cost_before)` deltas claim
        // the server's whole metering history; the last-known snapshot
        // keeps deltas bounded by the unobserved window.
        assert_eq!(remote.costs(), live, "dead-server costs must be the last snapshot");
    }

    #[test]
    fn store_error_wire_codec_roundtrips() {
        let cases = vec![
            StoreError::NotFound("db.t.c".into()),
            StoreError::Csv { line: 12, message: "bad quote".into() },
            StoreError::Schema("dup".into()),
            StoreError::Join("no key".into()),
            StoreError::Backend("boom".into()),
            StoreError::SnapshotCorrupt("checksum mismatch at byte 42".into()),
            StoreError::Unavailable("flap".into()),
            StoreError::RetriesExhausted {
                attempts: 3,
                last: Box::new(StoreError::Unavailable("still down".into())),
            },
            StoreError::Overloaded { retry_after_ms: 75 },
            StoreError::QuotaExceeded { tenant: "acme".into() },
            StoreError::DeadlineExceeded { phase: Phase::BlockRead },
            StoreError::DeadlineExceeded { phase: Phase::Validate },
        ];
        for e in cases {
            let mut buf = Vec::new();
            put_store_error(&mut buf, &e);
            let mut cursor = &buf[..];
            assert_eq!(get_store_error(&mut cursor).unwrap(), e);
            assert!(cursor.is_empty());
        }
        // Codec errors survive as their message.
        let mut buf = Vec::new();
        put_store_error(&mut buf, &StoreError::Codec(CodecError::UnexpectedEof));
        let decoded = get_store_error(&mut &buf[..]).unwrap();
        assert!(matches!(decoded, StoreError::Codec(_)));
    }

    #[test]
    fn corrupt_frames_error_cleanly() {
        let backend = local_backend();
        let shared = ServerShared::new(RemoteServerConfig::default());
        // Bad magic.
        let mut payload = Vec::new();
        wg_util::codec::put_header(&mut payload, *b"NOPE", 1);
        let resp = handle_request(&payload, backend.as_ref(), &shared);
        let mut cursor = &resp[..];
        check_payload_header(&mut cursor).unwrap();
        assert_eq!(get_u8(&mut cursor).unwrap(), 1, "must be an error response");
        assert!(matches!(get_store_error(&mut cursor).unwrap(), StoreError::Codec(_)));

        // Unknown opcode.
        let mut payload = Vec::new();
        payload_header(&mut payload);
        put_u8(&mut payload, 200);
        let resp = handle_request(&payload, backend.as_ref(), &shared);
        let mut cursor = &resp[..];
        check_payload_header(&mut cursor).unwrap();
        assert_eq!(get_u8(&mut cursor).unwrap(), 1);

        // Truncated operands.
        let mut payload = Vec::new();
        payload_header(&mut payload);
        put_u8(&mut payload, op::TABLE_META);
        let resp = handle_request(&payload, backend.as_ref(), &shared);
        let mut cursor = &resp[..];
        check_payload_header(&mut cursor).unwrap();
        assert_eq!(get_u8(&mut cursor).unwrap(), 1);
    }

    #[test]
    fn concurrent_clients_share_one_server() {
        let (server, _remote, local) = loopback();
        let addr = server.local_addr().to_string();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let addr = addr.clone();
                scope.spawn(move || {
                    let remote = RemoteBackend::connect(addr).unwrap();
                    for _ in 0..5 {
                        let col = remote
                            .scan_column(&ColumnRef::new("db", "t", "a"), SampleSpec::Head(5))
                            .unwrap();
                        assert_eq!(col.len(), 5);
                    }
                });
            }
        });
        // 4 clients × 5 scans all billed on the shared server-side meter
        // (plus the scans the fixture's own client may have issued).
        assert!(local.costs().requests >= 20);
        server.shutdown();
    }

    #[test]
    fn over_cap_connection_gets_typed_retryable_refusal() {
        let local = local_backend();
        let config = RemoteServerConfig { max_connections: 2, ..Default::default() };
        let server = RemoteBackendServer::serve_with(local, "127.0.0.1:0", config).unwrap();
        let addr = server.local_addr().to_string();

        // Fill the cap with two held-open clients.
        let a = RemoteBackend::connect(addr.clone()).unwrap();
        let b = RemoteBackend::connect(addr.clone()).unwrap();
        assert!(a.validate_column(&ColumnRef::new("db", "t", "a")).is_ok());
        assert!(b.validate_column(&ColumnRef::new("db", "t", "a")).is_ok());

        // The third connection is refused with Overloaded — retryable,
        // typed, and fast (no hang, no thread).
        let err = RemoteBackend::connect(addr.clone()).unwrap_err();
        assert!(
            matches!(err, StoreError::Overloaded { .. }),
            "over-cap connect must shed typed: {err:?}"
        );
        assert!(err.is_retryable());
        let stats = server.stats();
        assert_eq!(stats.live_connections, 2);
        assert!(stats.shed_connections >= 1);

        // Dropping one held connection frees its slot; give the server a
        // few polls to reap the handler, then a new client succeeds.
        drop(a);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let c = loop {
            match RemoteBackend::connect(addr.clone()) {
                Ok(c) => break c,
                Err(e) => {
                    assert!(e.is_retryable(), "{e:?}");
                    assert!(std::time::Instant::now() < deadline, "slot never freed");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        };
        assert!(c.validate_column(&ColumnRef::new("db", "t", "a")).is_ok());
        server.shutdown();
    }

    #[test]
    fn in_flight_cap_sheds_requests_without_touching_backend() {
        let local = local_backend();
        let shared =
            ServerShared::new(RemoteServerConfig { max_in_flight: 1, ..Default::default() });
        // Occupy the single slot directly, then dispatch a request: it
        // must shed with Overloaded and bill nothing.
        let _held = InFlightPermit::acquire(&shared).unwrap();
        let billed_before = local.costs().requests;
        let mut payload = Vec::new();
        payload_header(&mut payload);
        put_u8(&mut payload, op::SCAN_COLUMN);
        put_column_ref(&mut payload, &ColumnRef::new("db", "t", "a"));
        SampleSpec::Full.encode(&mut payload);
        let resp = handle_request(&payload, local.as_ref(), &shared);
        let mut cursor = &resp[..];
        check_payload_header(&mut cursor).unwrap();
        assert_eq!(get_u8(&mut cursor).unwrap(), 1);
        let err = get_store_error(&mut cursor).unwrap();
        assert!(matches!(err, StoreError::Overloaded { .. }), "{err:?}");
        assert_eq!(local.costs().requests, billed_before, "shed request must bill nothing");
        assert_eq!(shared.shed_requests.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn context_frame_accounts_tenant_and_sheds_expired_deadline() {
        let (server, remote, local) = loopback();
        remote.set_tenant(Some("acme".into()));

        // A generous deadline passes through: the scan answers normally
        // and the tenant is accounted.
        remote.set_deadline(Deadline::within(Duration::from_secs(30)));
        let col = remote.scan_column(&ColumnRef::new("db", "t", "a"), SampleSpec::Head(5)).unwrap();
        assert_eq!(col.len(), 5);
        assert_eq!(server.tenant_requests(), vec![("acme".to_string(), 1)]);

        // An expired deadline is shed before any billed work.
        let billed_before = local.costs().requests;
        remote.set_deadline(Deadline::within(Duration::ZERO));
        let err =
            remote.scan_column(&ColumnRef::new("db", "t", "a"), SampleSpec::Head(5)).unwrap_err();
        assert!(matches!(err, StoreError::DeadlineExceeded { phase: Phase::Validate }), "{err:?}");
        assert_eq!(local.costs().requests, billed_before, "expired request must bill nothing");
        assert!(server.stats().deadline_shed >= 1);

        // Clearing the context restores plain v1 frames.
        remote.set_tenant(None);
        remote.set_deadline(Deadline::none());
        assert!(remote.validate_column(&ColumnRef::new("db", "t", "a")).is_ok());
        server.shutdown();
    }

    #[test]
    fn connection_storm_never_exhausts_threads() {
        // Regression for the unbounded accept loop: a storm of 40
        // connections against a cap of 4 must leave the server with at
        // most 4 handler threads, every refused client getting a typed
        // retryable error promptly (no hang).
        let local = local_backend();
        let config = RemoteServerConfig { max_connections: 4, ..Default::default() };
        let server = RemoteBackendServer::serve_with(local, "127.0.0.1:0", config).unwrap();
        let addr = server.local_addr().to_string();

        let mut held = Vec::new();
        let mut refused = 0u32;
        for _ in 0..40 {
            match RemoteBackend::connect(addr.clone()) {
                Ok(c) => held.push(c),
                Err(e) => {
                    assert!(
                        matches!(e, StoreError::Overloaded { .. }),
                        "storm refusal must be typed: {e:?}"
                    );
                    refused += 1;
                }
            }
            let live = server.stats().live_connections;
            assert!(live <= 4, "handler threads exceeded the cap: {live}");
        }
        assert!(refused >= 36 - 4, "most storm connections must be refused: {refused}");
        assert!(server.stats().shed_connections >= u64::from(refused));
        // The held connections still work — load shedding, not collapse.
        for c in &held {
            assert!(c.validate_column(&ColumnRef::new("db", "t", "a")).is_ok());
        }
        server.shutdown();
    }
}
