//! Wire-protocol remote backend: serve any [`WarehouseBackend`] over TCP
//! and consume it from another process (or machine) through the same
//! trait.
//!
//! WarpGate is pitched as a *cloud* service: the discovery node and the
//! warehouse it indexes usually do not share a process. This module closes
//! that gap with a deliberately small binary RPC protocol built on the
//! workspace's composite-frame codec ([`wg_util::codec`]) — the same
//! length-prefixed primitives the simulated CDW already uses for scan
//! round trips, now framed onto a socket.
//!
//! ## Frame layout (WGRP v1)
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! u32 payload_len (LE) | payload
//! payload := "WGRP" magic | u32 version | body
//! request body  := u8 opcode | operands…
//! response body := u8 status (0 = ok, 1 = err) | result | encoded StoreError
//! ```
//!
//! Operands and results reuse the codec's length-prefixed strings and the
//! store's existing column wire form ([`Column::encode`]); see the opcode
//! table in [`op`]. Decoding is bounds-checked end to end: a corrupt or
//! truncated frame yields [`StoreError::Codec`], never a panic.
//!
//! ## Failure semantics
//!
//! Transport failures (connect refused, reset, timeout) surface as
//! [`StoreError::Unavailable`] — *retryable*, so the canonical resilient
//! stack is `RetryBackend(RemoteBackend)`: the client drops its pooled
//! connection on any I/O error and the next attempt reconnects. Errors the
//! *server's* backend returns (e.g. [`StoreError::NotFound`]) are encoded
//! and re-raised on the client unchanged, so remote and in-process
//! backends are indistinguishable to callers — the loopback parity suite
//! pins this.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use wg_util::codec::{
    get_len, get_str, get_u32, get_u64, get_u8, put_f64, put_len, put_str, put_u32, put_u64,
    put_u8, CodecError, CodecResult,
};

use crate::backend::{BackendHandle, TableMeta, TableVersion, WarehouseBackend};
use crate::catalog::ColumnRef;
use crate::cdw::CostSnapshot;
use crate::column::Column;
use crate::error::{StoreError, StoreResult};
use crate::sample::SampleSpec;
use crate::table::Table;

/// Protocol magic + version.
const MAGIC: [u8; 4] = *b"WGRP";
const VERSION: u32 = 1;

/// Largest accepted frame (64 MiB): far above any sampled scan, far below
/// anything that suggests a healthy peer.
const MAX_FRAME: usize = 64 << 20;

/// How long the client waits for a response before declaring the link
/// dead. Scans in this workspace complete in milliseconds; 30 s is "the
/// peer is gone", not "the peer is slow".
const CLIENT_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Poll interval at which server threads re-check the shutdown flag while
/// blocked on I/O.
const SERVER_POLL: Duration = Duration::from_millis(25);

/// Request opcodes. One per [`WarehouseBackend`] method.
mod op {
    pub const NAME: u8 = 1;
    pub const LIST_TABLES: u8 = 2;
    pub const TABLE_META: u8 = 3;
    pub const SCAN_COLUMN: u8 = 4;
    pub const SCAN_TABLE: u8 = 5;
    pub const COSTS: u8 = 6;
    pub const RESET_COSTS: u8 = 7;
    pub const VALIDATE_COLUMN: u8 = 8;
    pub const SNAPSHOT_VERSIONS: u8 = 9;
}

// ---------------------------------------------------------------------------
// Wire codecs for the protocol's composite types.

fn put_column_ref(buf: &mut Vec<u8>, r: &ColumnRef) {
    put_str(buf, &r.database);
    put_str(buf, &r.table);
    put_str(buf, &r.column);
}

fn get_column_ref(buf: &mut &[u8]) -> CodecResult<ColumnRef> {
    // WGRP addresses are backend-relative by design: the server serves ONE
    // backend and must not care which namespace the caller attached it
    // under, so the wire carries no backend name and refs land in the
    // default namespace on both sides.
    Ok(ColumnRef::new(get_str(buf)?, get_str(buf)?, get_str(buf)?))
}

fn put_table_meta(buf: &mut Vec<u8>, m: &TableMeta) {
    put_str(buf, &m.database);
    put_str(buf, &m.table);
    put_len(buf, m.columns.len());
    for c in &m.columns {
        put_str(buf, c);
    }
    put_u64(buf, m.version);
}

fn get_table_meta(buf: &mut &[u8]) -> CodecResult<TableMeta> {
    let database = get_str(buf)?;
    let table = get_str(buf)?;
    let n = get_len(buf)?;
    let mut columns = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        columns.push(get_str(buf)?);
    }
    Ok(TableMeta { database, table, columns, version: get_u64(buf)? })
}

fn put_cost_snapshot(buf: &mut Vec<u8>, c: &CostSnapshot) {
    put_u64(buf, c.requests);
    put_u64(buf, c.bytes_scanned);
    put_f64(buf, c.virtual_secs);
    put_f64(buf, c.usd);
    put_u64(buf, c.retries);
}

fn get_cost_snapshot(buf: &mut &[u8]) -> CodecResult<CostSnapshot> {
    Ok(CostSnapshot {
        requests: get_u64(buf)?,
        bytes_scanned: get_u64(buf)?,
        virtual_secs: wg_util::codec::get_f64(buf)?,
        usd: wg_util::codec::get_f64(buf)?,
        retries: get_u64(buf)?,
    })
}

/// Encode a [`StoreError`] for the error branch of a response. Exhaustive
/// on purpose: a new error variant fails compilation here until it gets a
/// wire tag.
fn put_store_error(buf: &mut Vec<u8>, e: &StoreError) {
    match e {
        StoreError::NotFound(m) => {
            put_u8(buf, 0);
            put_str(buf, m);
        }
        StoreError::Csv { line, message } => {
            put_u8(buf, 1);
            put_u64(buf, *line as u64);
            put_str(buf, message);
        }
        StoreError::Schema(m) => {
            put_u8(buf, 2);
            put_str(buf, m);
        }
        StoreError::Join(m) => {
            put_u8(buf, 3);
            put_str(buf, m);
        }
        StoreError::Codec(c) => {
            put_u8(buf, 4);
            put_str(buf, &c.to_string());
        }
        StoreError::Backend(m) => {
            put_u8(buf, 5);
            put_str(buf, m);
        }
        StoreError::Unavailable(m) => {
            put_u8(buf, 6);
            put_str(buf, m);
        }
        StoreError::RetriesExhausted { attempts, last } => {
            put_u8(buf, 7);
            put_u32(buf, *attempts);
            put_store_error(buf, last);
        }
        StoreError::SnapshotCorrupt(m) => {
            put_u8(buf, 8);
            put_str(buf, m);
        }
    }
}

fn get_store_error(buf: &mut &[u8]) -> CodecResult<StoreError> {
    Ok(match get_u8(buf)? {
        0 => StoreError::NotFound(get_str(buf)?),
        1 => {
            let line = get_u64(buf)? as usize;
            StoreError::Csv { line, message: get_str(buf)? }
        }
        2 => StoreError::Schema(get_str(buf)?),
        3 => StoreError::Join(get_str(buf)?),
        // The inner CodecError's structure is not worth carrying across
        // the wire; its message is.
        4 => StoreError::Codec(CodecError::Invalid(get_str(buf)?)),
        5 => StoreError::Backend(get_str(buf)?),
        6 => StoreError::Unavailable(get_str(buf)?),
        7 => {
            let attempts = get_u32(buf)?;
            let last = get_store_error(buf)?;
            StoreError::RetriesExhausted { attempts, last: Box::new(last) }
        }
        8 => StoreError::SnapshotCorrupt(get_str(buf)?),
        tag => return Err(CodecError::Invalid(format!("unknown StoreError tag {tag}"))),
    })
}

fn put_table(buf: &mut Vec<u8>, t: &Table) {
    put_str(buf, t.name());
    put_len(buf, t.num_columns());
    for c in t.columns() {
        c.encode(buf);
    }
}

fn get_table(buf: &mut &[u8]) -> StoreResult<Table> {
    let name = get_str(buf)?;
    let n = get_len(buf)?;
    let mut cols = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        cols.push(Column::decode(buf)?);
    }
    Table::new(name, cols)
}

// ---------------------------------------------------------------------------
// Framing.

fn payload_header(buf: &mut Vec<u8>) {
    wg_util::codec::put_header(buf, MAGIC, VERSION);
}

fn check_payload_header(buf: &mut &[u8]) -> CodecResult<()> {
    let version = wg_util::codec::get_header(buf, MAGIC)?;
    if version != VERSION {
        return Err(CodecError::Invalid(format!("unsupported WGRP version {version}")));
    }
    Ok(())
}

fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> std::io::Result<()> {
    let mut frame = Vec::with_capacity(payload.len() + 4);
    put_u32(&mut frame, payload.len() as u32);
    frame.extend_from_slice(payload);
    stream.write_all(&frame)?;
    stream.flush()
}

/// Read exactly `buf.len()` bytes, tolerating read-timeout wakeups so the
/// server can poll its shutdown flag. Returns `Ok(false)` on a clean EOF
/// *before the first byte* (peer closed between frames) and when `stop`
/// was raised; `Ok(true)` when the buffer was filled.
fn read_exact_poll(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: Option<&AtomicBool>,
) -> std::io::Result<bool> {
    let mut filled = 0usize;
    while filled < buf.len() {
        if let Some(stop) = stop {
            if stop.load(Ordering::Relaxed) {
                return Ok(false);
            }
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            Ok(n) => filled += n,
            Err(e)
                if stop.is_some()
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                // Server poll tick: loop to re-check the stop flag.
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Read one frame. `Ok(None)` means clean end of stream (or shutdown).
fn read_frame(
    stream: &mut TcpStream,
    stop: Option<&AtomicBool>,
) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    if !read_exact_poll(stream, &mut len_bytes, stop)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    if !read_exact_poll(stream, &mut payload, stop)? {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed mid-frame",
        ));
    }
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Server.

/// Serves a local [`WarehouseBackend`] to [`RemoteBackend`] clients over
/// TCP. One thread accepts connections; each connection gets a handler
/// thread answering requests until the client disconnects or the server
/// shuts down.
pub struct RemoteBackendServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for RemoteBackendServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteBackendServer").field("addr", &self.addr).finish_non_exhaustive()
    }
}

impl RemoteBackendServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `backend`. Returns once the listener is live — a client may connect
    /// immediately.
    pub fn serve(backend: BackendHandle, addr: impl ToSocketAddrs) -> StoreResult<Self> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| StoreError::Backend(format!("remote server bind: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| StoreError::Backend(format!("remote server nonblocking: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| StoreError::Backend(format!("remote server local_addr: {e}")))?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = stop.clone();
        let accept_handle = std::thread::spawn(move || {
            let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
            while !accept_stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let backend = backend.clone();
                        let stop = accept_stop.clone();
                        handlers.push(std::thread::spawn(move || {
                            serve_connection(stream, backend, &stop);
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(SERVER_POLL);
                    }
                    Err(_) => std::thread::sleep(SERVER_POLL),
                }
                handlers.retain(|h| !h.is_finished());
            }
            for h in handlers {
                let _ = h.join();
            }
        });
        Ok(Self { addr: local, stop, accept_handle: Some(accept_handle) })
    }

    /// The address the server actually listens on (resolves ephemeral
    /// ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake blocked handler threads, and join them all.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RemoteBackendServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// One connection's request loop.
fn serve_connection(mut stream: TcpStream, backend: BackendHandle, stop: &AtomicBool) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(SERVER_POLL));
    loop {
        let payload = match read_frame(&mut stream, Some(stop)) {
            Ok(Some(p)) => p,
            // Clean disconnect, shutdown, or a broken peer: either way the
            // connection is done.
            Ok(None) | Err(_) => return,
        };
        let response = handle_request(&payload, backend.as_ref());
        if write_frame(&mut stream, &response).is_err() {
            return;
        }
    }
}

/// Decode one request payload, run it against `backend`, encode the
/// response payload.
fn handle_request(payload: &[u8], backend: &dyn WarehouseBackend) -> Vec<u8> {
    match try_handle_request(payload, backend) {
        Ok(ok_body) => ok_body,
        Err(e) => {
            let mut buf = Vec::with_capacity(64);
            payload_header(&mut buf);
            put_u8(&mut buf, 1);
            put_store_error(&mut buf, &e);
            buf
        }
    }
}

fn try_handle_request(payload: &[u8], backend: &dyn WarehouseBackend) -> StoreResult<Vec<u8>> {
    let mut cursor = payload;
    check_payload_header(&mut cursor)?;
    let opcode = get_u8(&mut cursor)?;
    let mut buf = Vec::with_capacity(256);
    payload_header(&mut buf);
    put_u8(&mut buf, 0);
    match opcode {
        op::NAME => put_str(&mut buf, &backend.name()),
        op::LIST_TABLES => {
            let metas = backend.list_tables()?;
            put_len(&mut buf, metas.len());
            for m in &metas {
                put_table_meta(&mut buf, m);
            }
        }
        op::TABLE_META => {
            let database = get_str(&mut cursor)?;
            let table = get_str(&mut cursor)?;
            put_table_meta(&mut buf, &backend.table_meta(&database, &table)?);
        }
        op::SCAN_COLUMN => {
            let r = get_column_ref(&mut cursor)?;
            let sample = SampleSpec::decode(&mut cursor)?;
            backend.scan_column(&r, sample)?.encode(&mut buf);
        }
        op::SCAN_TABLE => {
            let database = get_str(&mut cursor)?;
            let table = get_str(&mut cursor)?;
            let sample = SampleSpec::decode(&mut cursor)?;
            put_table(&mut buf, &backend.scan_table(&database, &table, sample)?);
        }
        op::COSTS => put_cost_snapshot(&mut buf, &backend.costs()),
        op::RESET_COSTS => backend.reset_costs(),
        op::VALIDATE_COLUMN => {
            let r = get_column_ref(&mut cursor)?;
            backend.validate_column(&r)?;
        }
        op::SNAPSHOT_VERSIONS => {
            let versions = backend.snapshot_versions()?;
            put_len(&mut buf, versions.len());
            for v in &versions {
                put_str(&mut buf, &v.database);
                put_str(&mut buf, &v.table);
                put_u64(&mut buf, v.version);
            }
        }
        other => {
            return Err(StoreError::Codec(CodecError::Invalid(format!("unknown opcode {other}"))))
        }
    }
    Ok(buf)
}

// ---------------------------------------------------------------------------
// Client.

/// A [`WarehouseBackend`] whose warehouse lives behind a
/// [`RemoteBackendServer`]. One pooled connection, lazily (re)established;
/// any transport failure drops it and surfaces as the *retryable*
/// [`StoreError::Unavailable`], so `RetryBackend(RemoteBackend)` rides out
/// flaky links and server restarts transparently.
pub struct RemoteBackend {
    addr: String,
    /// Server-reported backend name, fetched at connect time.
    remote_name: String,
    conn: Mutex<Option<TcpStream>>,
    /// Last successfully fetched cost snapshot. Served when a `COSTS` RPC
    /// fails: the server meter is monotonic between resets, so a stale
    /// reading keeps `CostSnapshot::since` deltas bounded by the
    /// unobserved window — an all-zero answer would instead attribute the
    /// server's whole metering history to the next delta.
    last_costs: Mutex<CostSnapshot>,
}

impl std::fmt::Debug for RemoteBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteBackend")
            .field("addr", &self.addr)
            .field("remote_name", &self.remote_name)
            .finish_non_exhaustive()
    }
}

impl RemoteBackend {
    /// Connect to a [`RemoteBackendServer`] at `addr` (e.g.
    /// `"127.0.0.1:7878"`). Fails with [`StoreError::Unavailable`] if the
    /// server is unreachable.
    pub fn connect(addr: impl Into<String>) -> StoreResult<Self> {
        let backend = Self {
            addr: addr.into(),
            remote_name: String::new(),
            conn: Mutex::new(None),
            last_costs: Mutex::new(CostSnapshot::default()),
        };
        // Eagerly verify the link and learn the served backend's name.
        let mut buf = Vec::with_capacity(16);
        payload_header(&mut buf);
        put_u8(&mut buf, op::NAME);
        let resp = backend.roundtrip(&buf)?;
        let name = get_str(&mut resp.as_slice())
            .map_err(|e| StoreError::Unavailable(format!("remote handshake: {e}")))?;
        Ok(Self { remote_name: name, ..backend })
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn unavailable(&self, context: &str, e: impl std::fmt::Display) -> StoreError {
        StoreError::Unavailable(format!("remote backend {}: {context}: {e}", self.addr))
    }

    /// Send one request payload, return the response *result* bytes (header
    /// and status stripped, server-side errors re-raised). Drops the pooled
    /// connection on any transport failure so the next call reconnects.
    fn roundtrip(&self, request: &[u8]) -> StoreResult<Vec<u8>> {
        let mut guard = self.conn.lock();
        if guard.is_none() {
            let stream =
                TcpStream::connect(&self.addr).map_err(|e| self.unavailable("connect", e))?;
            let _ = stream.set_nodelay(true);
            stream
                .set_read_timeout(Some(CLIENT_IO_TIMEOUT))
                .map_err(|e| self.unavailable("configure", e))?;
            stream
                .set_write_timeout(Some(CLIENT_IO_TIMEOUT))
                .map_err(|e| self.unavailable("configure", e))?;
            *guard = Some(stream);
        }
        let stream = guard.as_mut().expect("connection just ensured");
        let outcome = write_frame(stream, request).and_then(|()| read_frame(stream, None));
        let payload = match outcome {
            Ok(Some(p)) => p,
            Ok(None) => {
                *guard = None;
                return Err(self.unavailable("read", "server closed the connection"));
            }
            Err(e) => {
                *guard = None;
                return Err(self.unavailable("io", e));
            }
        };
        drop(guard);
        let mut cursor = &payload[..];
        check_payload_header(&mut cursor)?;
        match get_u8(&mut cursor)? {
            0 => Ok(cursor.to_vec()),
            1 => Err(get_store_error(&mut cursor)?),
            other => Err(StoreError::Codec(CodecError::Invalid(format!(
                "unknown response status {other}"
            )))),
        }
    }

    fn request(&self, opcode: u8, operands: impl FnOnce(&mut Vec<u8>)) -> StoreResult<Vec<u8>> {
        let mut buf = Vec::with_capacity(128);
        payload_header(&mut buf);
        put_u8(&mut buf, opcode);
        operands(&mut buf);
        self.roundtrip(&buf)
    }
}

impl WarehouseBackend for RemoteBackend {
    fn name(&self) -> String {
        format!("remote:{}", self.remote_name)
    }

    fn list_tables(&self) -> StoreResult<Vec<TableMeta>> {
        let body = self.request(op::LIST_TABLES, |_| {})?;
        let mut cursor = &body[..];
        let n = get_len(&mut cursor)?;
        let mut metas = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            metas.push(get_table_meta(&mut cursor)?);
        }
        Ok(metas)
    }

    fn table_meta(&self, database: &str, table: &str) -> StoreResult<TableMeta> {
        let body = self.request(op::TABLE_META, |buf| {
            put_str(buf, database);
            put_str(buf, table);
        })?;
        Ok(get_table_meta(&mut &body[..])?)
    }

    fn scan_column(&self, r: &ColumnRef, sample: SampleSpec) -> StoreResult<Column> {
        let body = self.request(op::SCAN_COLUMN, |buf| {
            put_column_ref(buf, r);
            sample.encode(buf);
        })?;
        Ok(Column::decode(&mut &body[..])?)
    }

    fn scan_table(&self, database: &str, table: &str, sample: SampleSpec) -> StoreResult<Table> {
        let body = self.request(op::SCAN_TABLE, |buf| {
            put_str(buf, database);
            put_str(buf, table);
            sample.encode(buf);
        })?;
        get_table(&mut &body[..])
    }

    fn costs(&self) -> CostSnapshot {
        // The trait's cost surface is infallible; an unreachable server
        // answers with the last snapshot this client saw (see
        // `last_costs` — a zero answer would corrupt `since` deltas).
        match self
            .request(op::COSTS, |_| {})
            .and_then(|body| Ok(get_cost_snapshot(&mut &body[..])?))
        {
            Ok(fresh) => {
                *self.last_costs.lock() = fresh;
                fresh
            }
            Err(_) => *self.last_costs.lock(),
        }
    }

    fn reset_costs(&self) {
        if self.request(op::RESET_COSTS, |_| {}).is_ok() {
            *self.last_costs.lock() = CostSnapshot::default();
        }
    }

    fn validate_column(&self, r: &ColumnRef) -> StoreResult<()> {
        self.request(op::VALIDATE_COLUMN, |buf| put_column_ref(buf, r)).map(|_| ())
    }

    fn snapshot_versions(&self) -> StoreResult<Vec<TableVersion>> {
        let body = self.request(op::SNAPSHOT_VERSIONS, |_| {})?;
        let mut cursor = &body[..];
        let n = get_len(&mut cursor)?;
        let mut versions = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            versions.push(TableVersion {
                database: get_str(&mut cursor)?,
                table: get_str(&mut cursor)?,
                version: get_u64(&mut cursor)?,
            });
        }
        Ok(versions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Database, Warehouse};
    use crate::cdw::{CdwConfig, CdwConnector};

    fn local_backend() -> BackendHandle {
        let mut w = Warehouse::new("served");
        let mut db = Database::new("db");
        db.add_table(
            Table::new(
                "t",
                vec![
                    Column::text("a", (0..30).map(|i| format!("v{i}")).collect::<Vec<_>>()),
                    Column::ints("b", (0..30).collect()),
                ],
            )
            .unwrap(),
        );
        db.add_table(Table::new("u", vec![Column::floats("x", vec![1.5, 2.5, 3.5])]).unwrap());
        w.add_database(db);
        Arc::new(CdwConnector::new(w, CdwConfig::free()))
    }

    fn loopback() -> (RemoteBackendServer, RemoteBackend, BackendHandle) {
        let local = local_backend();
        let server = RemoteBackendServer::serve(local.clone(), "127.0.0.1:0").unwrap();
        let client = RemoteBackend::connect(server.local_addr().to_string()).unwrap();
        (server, client, local)
    }

    #[test]
    fn full_surface_matches_local_backend() {
        let (server, remote, local) = loopback();
        assert_eq!(remote.name(), "remote:served");

        assert_eq!(remote.list_tables().unwrap(), local.list_tables().unwrap());
        assert_eq!(remote.table_meta("db", "t").unwrap(), local.table_meta("db", "t").unwrap());
        assert_eq!(remote.snapshot_versions().unwrap(), local.snapshot_versions().unwrap());

        let r = ColumnRef::new("db", "t", "a");
        assert!(remote.validate_column(&r).is_ok());
        assert!(matches!(
            remote.validate_column(&ColumnRef::new("db", "t", "nope")),
            Err(StoreError::NotFound(_))
        ));

        // A deterministic sample scans identically through the wire.
        let spec = SampleSpec::DistinctReservoir { n: 10, seed: 7 };
        let via_remote = remote.scan_column(&r, spec).unwrap();
        let via_local = local.scan_column(&r, spec).unwrap();
        assert_eq!(via_remote.len(), via_local.len());
        for i in 0..via_remote.len() {
            assert_eq!(via_remote.get(i).to_string(), via_local.get(i).to_string());
        }

        let t = remote.scan_table("db", "t", SampleSpec::Head(5)).unwrap();
        assert_eq!(t.num_rows(), 5);
        assert_eq!(t.num_columns(), 2);

        // Costs meter on the server side, visible through the client.
        let c = remote.costs();
        assert!(c.requests >= 3, "server-side billing missing: {c:?}");
        remote.reset_costs();
        assert_eq!(remote.costs().requests, 0);
        server.shutdown();
    }

    #[test]
    fn server_side_errors_reraise_on_the_client() {
        let (server, remote, _local) = loopback();
        let err = remote.scan_column(&ColumnRef::new("db", "nope", "c"), SampleSpec::Full);
        assert!(matches!(err, Err(StoreError::NotFound(_))), "got {err:?}");
        let err = remote.scan_table("db", "missing", SampleSpec::Full);
        assert!(matches!(err, Err(StoreError::NotFound(_))), "got {err:?}");
        server.shutdown();
    }

    #[test]
    fn unreachable_server_is_retryable_unavailable() {
        // Grab an ephemeral port, then close the listener: nothing listens.
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let err = RemoteBackend::connect(format!("127.0.0.1:{port}")).unwrap_err();
        assert!(err.is_retryable(), "transport failures must be retryable: {err:?}");
    }

    #[test]
    fn client_reconnects_after_server_restart() {
        let local = local_backend();
        let server = RemoteBackendServer::serve(local.clone(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let remote = RemoteBackend::connect(addr.to_string()).unwrap();
        assert_eq!(remote.list_tables().unwrap().len(), 2);

        // Kill the server: the next call fails with a retryable error.
        server.shutdown();
        let err = remote.list_tables().unwrap_err();
        assert!(err.is_retryable(), "dead link must be retryable: {err:?}");

        // Restart on the same port; the pooled connection was dropped, so
        // the next call transparently reconnects.
        let server = RemoteBackendServer::serve(local, addr).unwrap();
        assert_eq!(remote.list_tables().unwrap().len(), 2);
        server.shutdown();
    }

    #[test]
    fn costs_survive_a_dead_server_as_the_last_known_snapshot() {
        let (server, remote, _local) = loopback();
        remote.scan_column(&ColumnRef::new("db", "t", "a"), SampleSpec::Full).unwrap();
        let live = remote.costs();
        assert!(live.requests >= 1);
        server.shutdown();
        // A zero answer here would make `since(cost_before)` deltas claim
        // the server's whole metering history; the last-known snapshot
        // keeps deltas bounded by the unobserved window.
        assert_eq!(remote.costs(), live, "dead-server costs must be the last snapshot");
    }

    #[test]
    fn store_error_wire_codec_roundtrips() {
        let cases = vec![
            StoreError::NotFound("db.t.c".into()),
            StoreError::Csv { line: 12, message: "bad quote".into() },
            StoreError::Schema("dup".into()),
            StoreError::Join("no key".into()),
            StoreError::Backend("boom".into()),
            StoreError::SnapshotCorrupt("checksum mismatch at byte 42".into()),
            StoreError::Unavailable("flap".into()),
            StoreError::RetriesExhausted {
                attempts: 3,
                last: Box::new(StoreError::Unavailable("still down".into())),
            },
        ];
        for e in cases {
            let mut buf = Vec::new();
            put_store_error(&mut buf, &e);
            let mut cursor = &buf[..];
            assert_eq!(get_store_error(&mut cursor).unwrap(), e);
            assert!(cursor.is_empty());
        }
        // Codec errors survive as their message.
        let mut buf = Vec::new();
        put_store_error(&mut buf, &StoreError::Codec(CodecError::UnexpectedEof));
        let decoded = get_store_error(&mut &buf[..]).unwrap();
        assert!(matches!(decoded, StoreError::Codec(_)));
    }

    #[test]
    fn corrupt_frames_error_cleanly() {
        let backend = local_backend();
        // Bad magic.
        let mut payload = Vec::new();
        wg_util::codec::put_header(&mut payload, *b"NOPE", 1);
        let resp = handle_request(&payload, backend.as_ref());
        let mut cursor = &resp[..];
        check_payload_header(&mut cursor).unwrap();
        assert_eq!(get_u8(&mut cursor).unwrap(), 1, "must be an error response");
        assert!(matches!(get_store_error(&mut cursor).unwrap(), StoreError::Codec(_)));

        // Unknown opcode.
        let mut payload = Vec::new();
        payload_header(&mut payload);
        put_u8(&mut payload, 200);
        let resp = handle_request(&payload, backend.as_ref());
        let mut cursor = &resp[..];
        check_payload_header(&mut cursor).unwrap();
        assert_eq!(get_u8(&mut cursor).unwrap(), 1);

        // Truncated operands.
        let mut payload = Vec::new();
        payload_header(&mut payload);
        put_u8(&mut payload, op::TABLE_META);
        let resp = handle_request(&payload, backend.as_ref());
        let mut cursor = &resp[..];
        check_payload_header(&mut cursor).unwrap();
        assert_eq!(get_u8(&mut cursor).unwrap(), 1);
    }

    #[test]
    fn concurrent_clients_share_one_server() {
        let (server, _remote, local) = loopback();
        let addr = server.local_addr().to_string();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let addr = addr.clone();
                scope.spawn(move || {
                    let remote = RemoteBackend::connect(addr).unwrap();
                    for _ in 0..5 {
                        let col = remote
                            .scan_column(&ColumnRef::new("db", "t", "a"), SampleSpec::Head(5))
                            .unwrap();
                        assert_eq!(col.len(), 5);
                    }
                });
            }
        });
        // 4 clients × 5 scans all billed on the shared server-side meter
        // (plus the scans the fixture's own client may have issued).
        assert!(local.costs().requests >= 20);
        server.shutdown();
    }
}
