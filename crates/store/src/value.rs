//! Scalar values.
//!
//! [`Value`] is the owned scalar used at API boundaries (CSV ingestion, join
//! keys, test fixtures); [`ValueRef`] is the borrowed view handed out by
//! columns so that iterating a table never clones cell contents.

use std::fmt;

use crate::dtype::DataType;

/// An owned scalar cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL / missing.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
}

impl Value {
    /// The value's data type ([`DataType::Text`] for `Null` is avoided by
    /// returning `None`).
    pub fn dtype(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
        }
    }

    /// Borrow as a [`ValueRef`].
    pub fn as_ref(&self) -> ValueRef<'_> {
        match self {
            Value::Null => ValueRef::Null,
            Value::Bool(b) => ValueRef::Bool(*b),
            Value::Int(i) => ValueRef::Int(*i),
            Value::Float(x) => ValueRef::Float(*x),
            Value::Text(s) => ValueRef::Text(s),
        }
    }

    /// True if the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.as_ref(), f)
    }
}

/// A borrowed scalar cell value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueRef<'a> {
    /// SQL NULL / missing.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(&'a str),
}

impl<'a> ValueRef<'a> {
    /// True if the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, ValueRef::Null)
    }

    /// Convert to an owned [`Value`].
    pub fn to_owned(&self) -> Value {
        match self {
            ValueRef::Null => Value::Null,
            ValueRef::Bool(b) => Value::Bool(*b),
            ValueRef::Int(i) => Value::Int(*i),
            ValueRef::Float(x) => Value::Float(*x),
            ValueRef::Text(s) => Value::Text((*s).to_string()),
        }
    }

    /// The text payload if this is a `Text` value.
    pub fn as_text(&self) -> Option<&'a str> {
        match self {
            ValueRef::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64` for `Int`/`Float`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ValueRef::Int(i) => Some(*i as f64),
            ValueRef::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Render the value the way it would appear in a CSV cell / CDW wire
    /// format: NULL renders as the empty string, floats with minimal digits.
    pub fn render(&self) -> String {
        self.to_string()
    }

    /// A canonical, hashable key encoding: used by join/overlap operators so
    /// that `Int(3)` from two tables compare equal while `Text("3")` stays
    /// distinct from `Int(3)` unless normalization says otherwise.
    pub fn key_bytes(&self, out: &mut Vec<u8>) {
        out.clear();
        match self {
            ValueRef::Null => out.push(b'N'),
            ValueRef::Bool(b) => {
                out.push(b'B');
                out.push(u8::from(*b));
            }
            ValueRef::Int(i) => {
                out.push(b'I');
                out.extend_from_slice(&i.to_le_bytes());
            }
            ValueRef::Float(x) => {
                // Normalize -0.0 to 0.0 and NaN to a single bit pattern so
                // equal-looking floats hash identically.
                let x = if *x == 0.0 { 0.0 } else { *x };
                let bits = if x.is_nan() { f64::NAN.to_bits() } else { x.to_bits() };
                out.push(b'F');
                out.extend_from_slice(&bits.to_le_bytes());
            }
            ValueRef::Text(s) => {
                out.push(b'T');
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
}

impl fmt::Display for ValueRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueRef::Null => Ok(()),
            ValueRef::Bool(b) => write!(f, "{}", if *b { "true" } else { "false" }),
            ValueRef::Int(i) => write!(f, "{i}"),
            ValueRef::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            ValueRef::Text(s) => f.write_str(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_csv_expectations() {
        assert_eq!(Value::Null.to_string(), "");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::Float(3.0).to_string(), "3.0");
        assert_eq!(Value::Text("hi".into()).to_string(), "hi");
    }

    #[test]
    fn roundtrip_ref_owned() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Int(9),
            Value::Float(0.25),
            Value::Text("x".into()),
        ];
        for v in vals {
            assert_eq!(v.as_ref().to_owned(), v);
        }
    }

    #[test]
    fn key_bytes_distinguish_types() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        ValueRef::Int(3).key_bytes(&mut a);
        ValueRef::Text("3").key_bytes(&mut b);
        assert_ne!(a, b);
        ValueRef::Int(3).key_bytes(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn key_bytes_normalize_negative_zero() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        ValueRef::Float(0.0).key_bytes(&mut a);
        ValueRef::Float(-0.0).key_bytes(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn as_f64_widens() {
        assert_eq!(ValueRef::Int(4).as_f64(), Some(4.0));
        assert_eq!(ValueRef::Float(0.5).as_f64(), Some(0.5));
        assert_eq!(ValueRef::Text("4").as_f64(), None);
    }

    #[test]
    fn dtype_of_values() {
        assert_eq!(Value::Null.dtype(), None);
        assert_eq!(Value::Int(1).dtype(), Some(DataType::Int));
    }
}
