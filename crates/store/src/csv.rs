//! RFC-4180 CSV reading and writing.
//!
//! Open-data corpora (NextiaJD is assembled from Kaggle/OpenML CSV files)
//! arrive as CSV; the paper's §5.2.2 discusses the cost of loading giant
//! CSV files. This parser handles quoted fields, escaped quotes (`""`),
//! embedded separators and newlines inside quotes, and CRLF line endings.
//! Type inference maps each parsed column onto the store's storage types.

use crate::column::Column;
use crate::dtype::{self, DataType};
use crate::error::{StoreError, StoreResult};
use crate::table::Table;
use crate::value::Value;

/// Parse CSV text into raw records (header not treated specially).
///
/// Returns an error for unterminated quotes or ragged rows (a row whose
/// field count differs from the header's).
pub fn parse_records(input: &str) -> StoreResult<Vec<Vec<String>>> {
    let mut records: Vec<Vec<String>> = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut line = 1usize;
    // Tracks whether the current record has any content, so a trailing
    // newline does not produce a phantom empty record.
    let mut record_started = false;

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    field.push(c);
                    line += 1;
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' => {
                in_quotes = true;
                record_started = true;
            }
            ',' => {
                record.push(std::mem::take(&mut field));
                record_started = true;
            }
            '\r' => {
                // Swallow; the following '\n' terminates the record.
            }
            '\n' => {
                line += 1;
                if record_started || !field.is_empty() || !record.is_empty() {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                    record_started = false;
                }
            }
            _ => {
                field.push(c);
                record_started = true;
            }
        }
    }
    if in_quotes {
        return Err(StoreError::Csv { line, message: "unterminated quoted field".into() });
    }
    if record_started || !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }

    if let Some(first) = records.first() {
        let width = first.len();
        for (i, r) in records.iter().enumerate() {
            if r.len() != width {
                return Err(StoreError::Csv {
                    line: i + 1,
                    message: format!("expected {} fields, found {}", width, r.len()),
                });
            }
        }
    }
    Ok(records)
}

/// Parse CSV text (first record = header) into a [`Table`] with inferred
/// column types. Empty cells become NULL.
pub fn read_table(name: impl Into<String>, input: &str) -> StoreResult<Table> {
    let records = parse_records(input)?;
    let Some(header) = records.first() else {
        return Table::new(name, vec![]);
    };
    let ncols = header.len();
    let nrows = records.len() - 1;

    let mut columns = Vec::with_capacity(ncols);
    for (ci, col_name) in header.iter().enumerate() {
        // First pass: infer the unified type.
        let mut ty: Option<DataType> = None;
        for r in records.iter().skip(1) {
            if let Some(t) = dtype::infer_cell(&r[ci]) {
                ty = Some(match ty {
                    None => t,
                    Some(prev) => dtype::unify(prev, t),
                });
            }
        }
        // Second pass: materialize values under that type.
        let mut values = Vec::with_capacity(nrows);
        for r in records.iter().skip(1) {
            let raw = r[ci].trim();
            let v = if raw.is_empty() {
                Value::Null
            } else {
                match ty {
                    Some(DataType::Int) => {
                        Value::Int(dtype::parse_int(raw).expect("inferred Int implies parseable"))
                    }
                    Some(DataType::Float) => Value::Float(
                        dtype::parse_float(raw).expect("inferred Float implies parseable"),
                    ),
                    Some(DataType::Bool) => Value::Bool(
                        dtype::parse_bool(raw).expect("inferred Bool implies parseable"),
                    ),
                    // Text columns keep the *untrimmed* cell: whitespace can
                    // be significant data.
                    _ => Value::Text(r[ci].clone()),
                }
            };
            values.push(v);
        }
        columns.push(Column::from_values(col_name.clone(), &values));
    }
    Table::new(name, columns)
}

/// Serialize a table to CSV (header + rows). Quotes only where needed.
pub fn write_table(table: &Table) -> String {
    let mut out = String::new();
    let ncols = table.num_columns();
    for (i, c) in table.columns().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_field(&mut out, c.name());
    }
    out.push('\n');
    for r in 0..table.num_rows() {
        for (i, c) in table.columns().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let v = c.get(r);
            if !v.is_null() {
                write_field(&mut out, &v.to_string());
            }
        }
        out.push('\n');
        let _ = ncols;
    }
    out
}

fn write_field(out: &mut String, field: &str) {
    let needs_quotes = field.contains(',')
        || field.contains('"')
        || field.contains('\n')
        || field.contains('\r')
        || field.starts_with(' ')
        || field.ends_with(' ');
    if needs_quotes {
        out.push('"');
        for ch in field.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueRef;

    #[test]
    fn parses_simple() {
        let recs = parse_records("a,b\n1,2\n3,4\n").unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[1], vec!["1", "2"]);
    }

    #[test]
    fn parses_quotes_and_escapes() {
        let recs = parse_records("name,quote\n\"Smith, John\",\"said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(recs[1][0], "Smith, John");
        assert_eq!(recs[1][1], "said \"hi\"");
    }

    #[test]
    fn parses_newline_in_quotes() {
        let recs = parse_records("a\n\"line1\nline2\"\n").unwrap();
        assert_eq!(recs[1][0], "line1\nline2");
    }

    #[test]
    fn handles_crlf() {
        let recs = parse_records("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1], vec!["1", "2"]);
    }

    #[test]
    fn no_phantom_trailing_record() {
        assert_eq!(parse_records("a\n1\n").unwrap().len(), 2);
        assert_eq!(parse_records("a\n1").unwrap().len(), 2);
    }

    #[test]
    fn rejects_unterminated_quote() {
        assert!(matches!(parse_records("a\n\"oops\n"), Err(StoreError::Csv { .. })));
    }

    #[test]
    fn rejects_ragged_rows() {
        assert!(matches!(parse_records("a,b\n1\n"), Err(StoreError::Csv { .. })));
    }

    #[test]
    fn empty_field_quoted_counts_as_record() {
        let recs = parse_records("a\n\"\"\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1][0], "");
    }

    #[test]
    fn read_table_infers_types() {
        let t = read_table("t", "id,name,score,ok\n1,ada,3.5,true\n2,bob,,false\n").unwrap();
        assert_eq!(t.column("id").unwrap().dtype(), DataType::Int);
        assert_eq!(t.column("name").unwrap().dtype(), DataType::Text);
        assert_eq!(t.column("score").unwrap().dtype(), DataType::Float);
        assert_eq!(t.column("ok").unwrap().dtype(), DataType::Bool);
        assert_eq!(t.column("score").unwrap().get(1), ValueRef::Null);
    }

    #[test]
    fn mixed_column_becomes_text() {
        let t = read_table("t", "x\n1\nhello\n").unwrap();
        assert_eq!(t.column("x").unwrap().dtype(), DataType::Text);
        assert_eq!(t.column("x").unwrap().get(0), ValueRef::Text("1"));
    }

    #[test]
    fn roundtrip_table() {
        let t =
            read_table("t", "name,notes\n\"Smith, John\",\"said \"\"hi\"\"\"\nplain,\n").unwrap();
        let csv = write_table(&t);
        let t2 = read_table("t", &csv).unwrap();
        assert_eq!(t.column("name").unwrap(), t2.column("name").unwrap());
        assert_eq!(t.column("notes").unwrap(), t2.column("notes").unwrap());
    }

    #[test]
    fn empty_input_gives_empty_table() {
        let t = read_table("t", "").unwrap();
        assert_eq!(t.num_columns(), 0);
        assert_eq!(t.num_rows(), 0);
    }
}
