//! Fault- and latency-injecting wrapper backend.
//!
//! Cloud warehouses fail: queries time out, warehouses suspend, quotas
//! trip. [`FaultInjector`] wraps any [`WarehouseBackend`] and injects
//! *deterministic* scan failures and extra virtual latency, so resilience
//! scenarios (indexing aborts, retry loops, sync over a flaky link) are
//! testable without a flaky test suite.
//!
//! By default only the billed scan surface misbehaves; metadata calls
//! pass through, mirroring how catalog queries hit a different (and far
//! more reliable) service tier than warehouse compute. Durability tests
//! that need the catalog tier itself to die — "the backend vanished
//! between a checkpoint and the next sync" — opt in via
//! [`FaultPlan::metadata_fail_every`], which gates `list_tables` /
//! `table_meta` / `snapshot_versions` on their own deterministic counter
//! (scan faulting is unaffected, and `validate_column` stays reliable so
//! query validation never flakes).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::backend::{BackendHandle, TableMeta, TableVersion, WarehouseBackend};
use crate::catalog::ColumnRef;
use crate::cdw::CostSnapshot;
use crate::column::Column;
use crate::error::{StoreError, StoreResult};
use crate::sample::SampleSpec;
use crate::table::Table;

/// What the injector does to scans. The default plan injects nothing, so a
/// wrapped backend behaves identically to the inner one (the parity suite
/// pins this).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Fail every Nth matching scan (1 = every scan, 0 = never).
    pub fail_every: u64,
    /// Restrict faults to scans of one `(database, table)`; `None` targets
    /// every scan.
    pub only_table: Option<(String, String)>,
    /// Extra virtual latency charged per successful matching scan,
    /// seconds — a degraded-link model.
    pub extra_latency_secs: f64,
    /// Fail every Nth *metadata* call — `list_tables`, `table_meta`,
    /// `snapshot_versions` — on a counter separate from the scan gate
    /// (1 = every call, 0 = never, the default). `only_table` scoping does
    /// not apply (the catalog tier fails as a whole), and
    /// `validate_column` is never faulted.
    pub metadata_fail_every: u64,
    /// *Hang* every Nth matching scan for [`FaultPlan::hang_secs`] of real
    /// wall-clock time before it proceeds (1 = every scan, 0 = never, the
    /// default). Unlike `extra_latency_secs` — which only charges *virtual*
    /// time to the cost meter — a hang actually blocks the calling thread,
    /// which is what deadline checks, write timeouts, and shedding paths
    /// need to prove themselves against deterministically. The hung scan
    /// then runs normally (it may still fail if the fail gate also
    /// triggers).
    pub hang_every: u64,
    /// Real blocking delay per triggered hang, seconds.
    pub hang_secs: f64,
}

impl FaultPlan {
    /// Fail every `n`th scan, everywhere.
    pub fn fail_every(n: u64) -> Self {
        Self { fail_every: n, ..Self::default() }
    }

    /// Fail every `n`th metadata call, leaving scans healthy.
    pub fn fail_metadata_every(n: u64) -> Self {
        Self { metadata_fail_every: n, ..Self::default() }
    }

    /// Add `secs` of virtual latency to every scan, failing none.
    pub fn slow(secs: f64) -> Self {
        Self { extra_latency_secs: secs, ..Self::default() }
    }

    /// Block every scan for `secs` of *real* wall-clock time (a stalled
    /// warehouse model), failing none.
    pub fn hang(secs: f64) -> Self {
        Self { hang_every: 1, hang_secs: secs, ..Self::default() }
    }

    fn matches(&self, database: &str, table: &str) -> bool {
        match &self.only_table {
            None => true,
            Some((db, t)) => db == database && t == table,
        }
    }
}

/// A [`WarehouseBackend`] decorator injecting faults per a [`FaultPlan`].
pub struct FaultInjector {
    inner: BackendHandle,
    plan: FaultPlan,
    /// Matching scans attempted (failed ones included).
    scans: AtomicU64,
    /// Metadata calls attempted (failed ones included) — a separate
    /// stream, so enabling metadata faults never shifts the deterministic
    /// scan-fault schedule.
    meta_calls: AtomicU64,
    /// Faults injected so far (scan and metadata combined).
    faults: AtomicU64,
    /// Real blocking hangs injected so far.
    hangs: AtomicU64,
    /// Injected virtual latency, nanoseconds.
    injected_nanos: AtomicU64,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("inner", &self.inner.name())
            .field("plan", &self.plan)
            .finish_non_exhaustive()
    }
}

impl FaultInjector {
    /// Wrap `inner` with the given plan.
    pub fn new(inner: BackendHandle, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            scans: AtomicU64::new(0),
            meta_calls: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            hangs: AtomicU64::new(0),
            injected_nanos: AtomicU64::new(0),
        }
    }

    /// The plan in effect.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// How many faults have been injected.
    pub fn faults_injected(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// How many real blocking hangs have been injected.
    pub fn hangs_injected(&self) -> u64 {
        self.hangs.load(Ordering::Relaxed)
    }

    /// Decide the fate of one matching scan: count it, then either inject
    /// a fault or charge the extra latency.
    fn gate(&self, database: &str, table: &str, what: &str) -> StoreResult<()> {
        if !self.plan.matches(database, table) {
            return Ok(());
        }
        let n = self.scans.fetch_add(1, Ordering::Relaxed) + 1;
        if self.plan.hang_every > 0 && self.plan.hang_secs > 0.0 && n % self.plan.hang_every == 0 {
            // A real stall, not a virtual charge: the caller's thread
            // blocks exactly as it would on a wedged warehouse. Runs
            // before the fail gate so a scan can hang *and then* fail,
            // like a timeout observed only after the stall.
            self.hangs.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(std::time::Duration::from_secs_f64(self.plan.hang_secs));
        }
        if self.plan.fail_every > 0 && n % self.plan.fail_every == 0 {
            self.faults.fetch_add(1, Ordering::Relaxed);
            // Injected faults model the transient class of failure
            // (timeouts, suspended warehouses), so they are retryable —
            // which is what lets `RetryBackend` prove itself against this
            // wrapper.
            return Err(StoreError::Unavailable(format!(
                "injected fault on scan #{n} ({what} of {database}.{table})"
            )));
        }
        if self.plan.extra_latency_secs > 0.0 {
            self.injected_nanos
                .fetch_add((self.plan.extra_latency_secs * 1e9) as u64, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Decide the fate of one metadata call (the catalog tier).
    fn gate_metadata(&self, what: &str) -> StoreResult<()> {
        if self.plan.metadata_fail_every == 0 {
            return Ok(());
        }
        let n = self.meta_calls.fetch_add(1, Ordering::Relaxed) + 1;
        if n % self.plan.metadata_fail_every == 0 {
            self.faults.fetch_add(1, Ordering::Relaxed);
            return Err(StoreError::Unavailable(format!(
                "injected fault on metadata call #{n} ({what})"
            )));
        }
        Ok(())
    }
}

impl WarehouseBackend for FaultInjector {
    fn name(&self) -> String {
        format!("faulty:{}", self.inner.name())
    }

    fn list_tables(&self) -> StoreResult<Vec<TableMeta>> {
        self.gate_metadata("list_tables")?;
        self.inner.list_tables()
    }

    fn table_meta(&self, database: &str, table: &str) -> StoreResult<TableMeta> {
        self.gate_metadata("table_meta")?;
        self.inner.table_meta(database, table)
    }

    fn scan_column(&self, r: &ColumnRef, sample: SampleSpec) -> StoreResult<Column> {
        self.gate(&r.database, &r.table, "scan_column")?;
        self.inner.scan_column(r, sample)
    }

    fn scan_table(&self, database: &str, table: &str, sample: SampleSpec) -> StoreResult<Table> {
        self.gate(database, table, "scan_table")?;
        self.inner.scan_table(database, table, sample)
    }

    fn costs(&self) -> CostSnapshot {
        let injected = CostSnapshot {
            virtual_secs: self.injected_nanos.load(Ordering::Relaxed) as f64 / 1e9,
            ..CostSnapshot::default()
        };
        self.inner.costs().plus(&injected)
    }

    fn reset_costs(&self) {
        self.inner.reset_costs();
        self.injected_nanos.store(0, Ordering::Relaxed);
    }

    fn validate_column(&self, r: &ColumnRef) -> StoreResult<()> {
        self.inner.validate_column(r)
    }

    fn snapshot_versions(&self) -> StoreResult<Vec<TableVersion>> {
        self.gate_metadata("snapshot_versions")?;
        self.inner.snapshot_versions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Database, Warehouse};
    use crate::cdw::{CdwConfig, CdwConnector};
    use std::sync::Arc;

    fn inner() -> BackendHandle {
        let mut w = Warehouse::new("w");
        let mut db = Database::new("db");
        db.add_table(
            Table::new(
                "t",
                vec![Column::text("a", (0..20).map(|i| format!("v{i}")).collect::<Vec<_>>())],
            )
            .unwrap(),
        );
        db.add_table(Table::new("u", vec![Column::ints("b", (0..20).collect())]).unwrap());
        w.add_database(db);
        Arc::new(CdwConnector::new(w, CdwConfig::free()))
    }

    #[test]
    fn default_plan_is_transparent() {
        let f = FaultInjector::new(inner(), FaultPlan::default());
        let r = ColumnRef::new("db", "t", "a");
        for _ in 0..10 {
            assert!(f.scan_column(&r, SampleSpec::Full).is_ok());
        }
        assert_eq!(f.faults_injected(), 0);
        assert_eq!(f.costs().requests, 10);
    }

    #[test]
    fn fail_every_n_is_deterministic() {
        let f = FaultInjector::new(inner(), FaultPlan::fail_every(3));
        let r = ColumnRef::new("db", "t", "a");
        let outcomes: Vec<bool> =
            (0..9).map(|_| f.scan_column(&r, SampleSpec::Full).is_ok()).collect();
        assert_eq!(outcomes, vec![true, true, false, true, true, false, true, true, false]);
        assert_eq!(f.faults_injected(), 3);
    }

    #[test]
    fn faults_scope_to_one_table() {
        let plan = FaultPlan {
            fail_every: 1,
            only_table: Some(("db".into(), "t".into())),
            ..FaultPlan::default()
        };
        let f = FaultInjector::new(inner(), plan);
        assert!(f.scan_column(&ColumnRef::new("db", "t", "a"), SampleSpec::Full).is_err());
        assert!(f.scan_column(&ColumnRef::new("db", "u", "b"), SampleSpec::Full).is_ok());
        assert!(f.scan_table("db", "u", SampleSpec::Full).is_ok());
        assert!(f.scan_table("db", "t", SampleSpec::Full).is_err());
    }

    #[test]
    fn extra_latency_lands_in_costs_and_resets() {
        let f = FaultInjector::new(inner(), FaultPlan::slow(0.25));
        let r = ColumnRef::new("db", "t", "a");
        f.scan_column(&r, SampleSpec::Full).unwrap();
        f.scan_column(&r, SampleSpec::Full).unwrap();
        let c = f.costs();
        assert!(c.virtual_secs >= 0.5, "injected latency missing: {c:?}");
        assert_eq!(c.requests, 2, "inner billing must pass through");
        f.reset_costs();
        assert_eq!(f.costs().virtual_secs, 0.0);
        assert_eq!(f.costs().requests, 0);
    }

    #[test]
    fn metadata_never_faults_by_default() {
        let f = FaultInjector::new(inner(), FaultPlan::fail_every(1));
        assert!(f.list_tables().is_ok());
        assert!(f.table_meta("db", "t").is_ok());
        assert!(f.validate_column(&ColumnRef::new("db", "t", "a")).is_ok());
        assert!(f.snapshot_versions().is_ok());
        assert_eq!(f.faults_injected(), 0);
    }

    #[test]
    fn metadata_faults_are_deterministic_and_leave_scans_healthy() {
        let f = FaultInjector::new(inner(), FaultPlan::fail_metadata_every(3));
        // The three metadata entry points share one counter: every third
        // call dies, whatever mix of calls made up the stream.
        let outcomes = [
            f.list_tables().is_ok(),
            f.table_meta("db", "t").is_ok(),
            f.snapshot_versions().is_ok(),
            f.snapshot_versions().is_ok(),
            f.list_tables().is_ok(),
            f.table_meta("db", "u").is_ok(),
        ];
        assert_eq!(outcomes, [true, true, false, true, true, false]);
        assert_eq!(f.faults_injected(), 2);
        // Scans ride a separate counter and separate plan knob.
        let r = ColumnRef::new("db", "t", "a");
        for _ in 0..5 {
            assert!(f.scan_column(&r, SampleSpec::Full).is_ok());
        }
        // Validation is never part of the metadata fault surface.
        assert!(f.validate_column(&r).is_ok());
    }

    #[test]
    fn hang_fault_blocks_real_wall_clock_time() {
        let f = FaultInjector::new(inner(), FaultPlan::hang(0.05));
        let r = ColumnRef::new("db", "t", "a");
        let start = std::time::Instant::now();
        f.scan_column(&r, SampleSpec::Full).unwrap();
        let elapsed = start.elapsed();
        assert!(elapsed >= std::time::Duration::from_millis(50), "no real stall: {elapsed:?}");
        assert_eq!(f.hangs_injected(), 1);
        // Hangs are not failures: nothing lands in the fault counter and
        // the scan's bill passes through untouched.
        assert_eq!(f.faults_injected(), 0);
        assert_eq!(f.costs().requests, 1);
    }

    #[test]
    fn hang_every_n_is_deterministic_and_scoped() {
        let plan = FaultPlan {
            hang_every: 2,
            hang_secs: 0.03,
            only_table: Some(("db".into(), "t".into())),
            ..FaultPlan::default()
        };
        let f = FaultInjector::new(inner(), plan);
        // Non-matching scans never hang.
        let start = std::time::Instant::now();
        for _ in 0..4 {
            f.scan_column(&ColumnRef::new("db", "u", "b"), SampleSpec::Full).unwrap();
        }
        assert!(start.elapsed() < std::time::Duration::from_millis(30));
        assert_eq!(f.hangs_injected(), 0);
        // Matching scans hang on the even counts only.
        for expected in [0u64, 1, 1, 2] {
            f.scan_column(&ColumnRef::new("db", "t", "a"), SampleSpec::Full).unwrap();
            assert_eq!(f.hangs_injected(), expected);
        }
    }

    #[test]
    fn hang_composes_with_fail_gate() {
        // Every scan hangs, every second scan then fails: the stalled-
        // then-timed-out shape. One shared counter keeps it deterministic.
        let plan = FaultPlan { hang_every: 1, hang_secs: 0.01, ..FaultPlan::fail_every(2) };
        let f = FaultInjector::new(inner(), plan);
        let r = ColumnRef::new("db", "t", "a");
        let outcomes: Vec<bool> =
            (0..4).map(|_| f.scan_column(&r, SampleSpec::Full).is_ok()).collect();
        assert_eq!(outcomes, vec![true, false, true, false]);
        assert_eq!(f.hangs_injected(), 4);
        assert_eq!(f.faults_injected(), 2);
    }

    #[test]
    fn metadata_faults_do_not_shift_the_scan_schedule() {
        // Same scan outcomes as `fail_every_n_is_deterministic`, even with
        // metadata faulting enabled and interleaved metadata calls.
        let plan = FaultPlan { metadata_fail_every: 2, ..FaultPlan::fail_every(3) };
        let f = FaultInjector::new(inner(), plan);
        let r = ColumnRef::new("db", "t", "a");
        let outcomes: Vec<bool> = (0..9)
            .map(|_| {
                let _ = f.list_tables();
                f.scan_column(&r, SampleSpec::Full).is_ok()
            })
            .collect();
        assert_eq!(outcomes, vec![true, true, false, true, true, false, true, true, false]);
    }
}
