//! In-memory column store and simulated cloud data warehouse.
//!
//! This crate is the data substrate WarpGate runs on. The paper's system
//! pulls columns out of Snowflake-like cloud data warehouses (CDWs); we
//! reproduce that environment with:
//!
//! * a typed, dictionary-encoding **column store** ([`column`], [`table`],
//!   [`catalog`]) — the paper's §5.2.2 explicitly argues for in-memory
//!   column stores for discovery workloads;
//! * an RFC-4180 **CSV** reader/writer with type inference ([`csv`]);
//! * **sampling** operators pushed into the scan ([`sample`]), the paper's
//!   core cost-reduction lever (§3.1.3, §4.4);
//! * a **join executor** ([`join`]) including the cardinality-preserving
//!   lookup join that backs Sigma Workbooks' `Lookup` formula (§2.1), plus
//!   the containment/Jaccard measures used for ground-truth labeling;
//! * a simulated **CDW connector** ([`cdw`]) that serializes every scan
//!   through a wire codec (real work proportional to bytes moved) and
//!   meters requests, bytes scanned, virtual network latency and
//!   usage-based dollar cost;
//! * the pluggable **warehouse-backend trait** ([`backend`]) those pieces
//!   plug into, with a directory/CSV-backed implementation
//!   ([`csv_backend`]) and a fault/latency-injecting wrapper ([`fault`])
//!   alongside the simulated CDW;
//! * the **service middleware** layered over that trait: a retrying
//!   decorator with exponential backoff and deterministic jitter
//!   ([`retry`]) and a TCP wire-protocol server/client pair ([`remote`])
//!   that serves any backend to a WarpGate node across the network.
//!   Every [`error::StoreError`] is classified retryable vs. fatal
//!   ([`error::StoreError::is_retryable`]), which is the contract the
//!   middleware composes on.

pub mod backend;
pub mod catalog;
pub mod cdw;
pub mod column;
pub mod csv;
pub mod csv_backend;
pub mod dtype;
pub mod error;
pub mod fault;
pub mod join;
pub mod registry;
pub mod remote;
pub mod retry;
pub mod sample;
pub mod table;
pub mod value;

pub use backend::{BackendHandle, TableMeta, TableVersion, WarehouseBackend};
pub use catalog::{BackendId, ColumnRef, Database, TableRef, Warehouse};
pub use cdw::{CdwConfig, CdwConnector, CostMeter, CostSnapshot};
pub use column::{Column, ColumnData, TextColumn};
pub use csv_backend::CsvBackend;
pub use dtype::DataType;
pub use error::{StoreError, StoreResult};
pub use fault::{FaultInjector, FaultPlan};
pub use join::{containment, jaccard, JoinType, KeyNorm};
pub use registry::BackendRegistry;
pub use remote::{RemoteBackend, RemoteBackendServer, RemoteServerConfig, RemoteServerStats};
pub use retry::{RetryBackend, RetryClock, RetryPolicy, SystemClock, VirtualClock};
pub use sample::SampleSpec;
pub use table::Table;
pub use value::{Value, ValueRef};
