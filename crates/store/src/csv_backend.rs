//! Directory/CSV-backed warehouse backend.
//!
//! Serves a warehouse laid out on disk as `<root>/<database>/<table>.csv`
//! through the same [`crate::WarehouseBackend`] surface as the simulated
//! CDW: open-data corpora (NextiaJD is assembled from Kaggle/OpenML CSV
//! files) arrive exactly like this, and a directory of warehouse exports
//! is the cheapest way to serve real data without a cloud account.
//!
//! Cost semantics match [`crate::CdwConnector`]: scans parse the file,
//! apply the sampling push-down, and round-trip the sampled data through
//! the wire codec, charging the meter for the bytes actually moved.
//! Metadata calls (`list_tables`, `table_meta`, versions) read files but
//! are *not* billed — they model free information-schema queries.
//!
//! Version tokens are content hashes of the raw file bytes: editing a
//! file (or replacing it with different content) changes the token;
//! rewriting identical bytes does not. That makes
//! `warpgate_core::WarpGate::sync` re-index exactly the files that
//! changed on disk.

use std::path::{Path, PathBuf};

use crate::backend::{TableMeta, WarehouseBackend};
use crate::catalog::{ColumnRef, Warehouse};
use crate::cdw::{wire_scan_column, wire_scan_table, CdwConfig, CostMeter, CostSnapshot};
use crate::column::Column;
use crate::csv;
use crate::error::{StoreError, StoreResult};
use crate::sample::SampleSpec;
use crate::table::Table;

/// A warehouse served from a directory of CSV files.
pub struct CsvBackend {
    root: PathBuf,
    config: CdwConfig,
    meter: CostMeter,
}

impl std::fmt::Debug for CsvBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CsvBackend").field("root", &self.root).finish_non_exhaustive()
    }
}

fn io_err(context: &str, path: &Path, e: std::io::Error) -> StoreError {
    StoreError::Backend(format!("{context} {}: {e}", path.display()))
}

impl CsvBackend {
    /// Open a directory laid out as `<root>/<database>/<table>.csv`.
    /// Fails if `root` is not an existing directory.
    pub fn open(root: impl Into<PathBuf>, config: CdwConfig) -> StoreResult<Self> {
        let root = root.into();
        if !root.is_dir() {
            return Err(StoreError::Backend(format!(
                "CSV backend root is not a directory: {}",
                root.display()
            )));
        }
        Ok(Self { root, config, meter: CostMeter::default() })
    }

    /// The directory being served.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Materialize a [`Warehouse`] into `root` as one CSV file per table
    /// (creating `root` and the per-database directories). The written
    /// layout round-trips through [`CsvBackend::open`]; handy for tests
    /// and for exporting a simulated warehouse to disk.
    pub fn export_warehouse(warehouse: &Warehouse, root: impl AsRef<Path>) -> StoreResult<()> {
        let root = root.as_ref();
        for db in warehouse.databases() {
            let dir = root.join(db.name());
            std::fs::create_dir_all(&dir).map_err(|e| io_err("creating", &dir, e))?;
            for t in db.tables() {
                let path = dir.join(format!("{}.csv", t.name()));
                std::fs::write(&path, csv::write_table(t))
                    .map_err(|e| io_err("writing", &path, e))?;
            }
        }
        Ok(())
    }

    fn table_path(&self, database: &str, table: &str) -> PathBuf {
        self.root.join(database).join(format!("{table}.csv"))
    }

    /// Raw file bytes of one table, or NotFound if the file is absent.
    fn read_file(&self, database: &str, table: &str) -> StoreResult<String> {
        let path = self.table_path(database, table);
        if !path.is_file() {
            return Err(StoreError::NotFound(format!("table '{database}.{table}'")));
        }
        std::fs::read_to_string(&path).map_err(|e| io_err("reading", &path, e))
    }

    /// Parse one table from disk (unbilled; billing happens on the wire
    /// round trip in the scan methods).
    fn load_table(&self, database: &str, table: &str) -> StoreResult<Table> {
        csv::read_table(table, &self.read_file(database, table)?)
    }

    /// Sorted `(database, table)` listing of the directory layout.
    fn layout(&self) -> StoreResult<Vec<(String, String)>> {
        let mut databases: Vec<String> = Vec::new();
        let entries =
            std::fs::read_dir(&self.root).map_err(|e| io_err("listing", &self.root, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("listing", &self.root, e))?;
            if entry.path().is_dir() {
                databases.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        databases.sort();
        let mut out = Vec::new();
        for db in databases {
            let dir = self.root.join(&db);
            let mut tables: Vec<String> = Vec::new();
            for entry in std::fs::read_dir(&dir).map_err(|e| io_err("listing", &dir, e))? {
                let entry = entry.map_err(|e| io_err("listing", &dir, e))?;
                let path = entry.path();
                if path.is_file() && path.extension().is_some_and(|e| e == "csv") {
                    if let Some(stem) = path.file_stem() {
                        tables.push(stem.to_string_lossy().into_owned());
                    }
                }
            }
            tables.sort();
            out.extend(tables.into_iter().map(|t| (db.clone(), t)));
        }
        Ok(out)
    }

    fn meta_of(&self, database: &str, table: &str) -> StoreResult<TableMeta> {
        let content = self.read_file(database, table)?;
        let parsed = csv::read_table(table, &content)?;
        Ok(TableMeta {
            database: database.to_string(),
            table: table.to_string(),
            columns: parsed.columns().iter().map(|c| c.name().to_string()).collect(),
            version: wg_util::stable_hash64(content.as_bytes()),
        })
    }
}

impl WarehouseBackend for CsvBackend {
    fn name(&self) -> String {
        format!("csv:{}", self.root.display())
    }

    fn list_tables(&self) -> StoreResult<Vec<TableMeta>> {
        self.layout()?.into_iter().map(|(db, t)| self.meta_of(&db, &t)).collect()
    }

    fn table_meta(&self, database: &str, table: &str) -> StoreResult<TableMeta> {
        self.meta_of(database, table)
    }

    fn scan_column(&self, r: &ColumnRef, sample: SampleSpec) -> StoreResult<Column> {
        let table = self.load_table(&r.database, &r.table)?;
        let col = table.column(&r.column)?;
        wire_scan_column(col, sample, &self.config, &self.meter)
    }

    fn scan_table(&self, database: &str, table: &str, sample: SampleSpec) -> StoreResult<Table> {
        let t = self.load_table(database, table)?;
        wire_scan_table(&t, sample, &self.config, &self.meter)
    }

    fn costs(&self) -> CostSnapshot {
        self.meter.snapshot(&self.config)
    }

    fn reset_costs(&self) {
        self.meter.reset();
    }

    fn snapshot_versions(&self) -> StoreResult<Vec<crate::backend::TableVersion>> {
        // Cheaper than the default: hash file bytes without parsing CSV.
        self.layout()?
            .into_iter()
            .map(|(db, t)| {
                let content = self.read_file(&db, &t)?;
                Ok(crate::backend::TableVersion {
                    database: db,
                    table: t,
                    version: wg_util::stable_hash64(content.as_bytes()),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wg_csv_backend_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_warehouse() -> Warehouse {
        let mut w = Warehouse::new("w");
        let mut db = Database::new("sales");
        db.add_table(
            Table::new(
                "accounts",
                vec![
                    Column::text(
                        "name",
                        (0..40).map(|i| format!("Company {i}")).collect::<Vec<_>>(),
                    ),
                    Column::ints("employees", (0..40).map(|i| i * 3).collect()),
                ],
            )
            .unwrap(),
        );
        db.add_table(
            Table::new(
                "metrics",
                vec![Column::floats("revenue", (0..30).map(|i| 100.5 + i as f64).collect())],
            )
            .unwrap(),
        );
        w.add_database(db);
        w.database_mut("ops").add_table(
            Table::new("cities", vec![Column::text("city", ["Austin", "Boston", "Chicago"])])
                .unwrap(),
        );
        w
    }

    #[test]
    fn export_then_list_round_trips_the_catalog() {
        let root = temp_root("list");
        let w = sample_warehouse();
        CsvBackend::export_warehouse(&w, &root).unwrap();
        let b = CsvBackend::open(&root, CdwConfig::free()).unwrap();
        let metas = b.list_tables().unwrap();
        let names: Vec<(String, String)> =
            metas.iter().map(|m| (m.database.clone(), m.table.clone())).collect();
        assert_eq!(
            names,
            vec![
                ("ops".to_string(), "cities".to_string()),
                ("sales".to_string(), "accounts".to_string()),
                ("sales".to_string(), "metrics".to_string()),
            ],
            "listing must be sorted and exhaustive"
        );
        let accounts = metas.iter().find(|m| m.table == "accounts").unwrap();
        assert_eq!(accounts.columns, vec!["name", "employees"]);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn scans_match_the_source_warehouse() {
        let root = temp_root("scan");
        let w = sample_warehouse();
        CsvBackend::export_warehouse(&w, &root).unwrap();
        let b = CsvBackend::open(&root, CdwConfig::free()).unwrap();
        for (r, source) in w.iter_columns() {
            let scanned = b.scan_column(&r, SampleSpec::Full).unwrap();
            assert_eq!(&scanned, source, "CSV round trip changed {r}");
        }
        let t = b.scan_table("sales", "accounts", SampleSpec::Head(5)).unwrap();
        assert_eq!(t.num_rows(), 5);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn scans_are_billed_and_sampling_reduces_bytes() {
        let root = temp_root("bill");
        CsvBackend::export_warehouse(&sample_warehouse(), &root).unwrap();
        let b = CsvBackend::open(&root, CdwConfig::default()).unwrap();
        let r = ColumnRef::new("sales", "accounts", "name");
        b.scan_column(&r, SampleSpec::Full).unwrap();
        let full = b.costs();
        assert_eq!(full.requests, 1);
        assert!(full.bytes_scanned > 0 && full.usd > 0.0);
        b.reset_costs();
        b.scan_column(&r, SampleSpec::Head(4)).unwrap();
        let sampled = b.costs();
        assert!(sampled.bytes_scanned * 5 < full.bytes_scanned);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn metadata_is_unbilled_and_versions_track_file_content() {
        let root = temp_root("vers");
        CsvBackend::export_warehouse(&sample_warehouse(), &root).unwrap();
        let b = CsvBackend::open(&root, CdwConfig::default()).unwrap();
        let before = b.snapshot_versions().unwrap();
        b.list_tables().unwrap();
        b.table_meta("ops", "cities").unwrap();
        assert_eq!(b.costs().requests, 0, "metadata must be free");

        // Rewriting identical bytes keeps tokens; editing a file changes
        // exactly that table's token.
        let path = root.join("ops").join("cities.csv");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(b.snapshot_versions().unwrap(), before);
        std::fs::write(&path, "city\nAustin\nDallas\n").unwrap();
        let after = b.snapshot_versions().unwrap();
        let changed: Vec<&str> = before
            .iter()
            .zip(&after)
            .filter(|(x, y)| x.version != y.version)
            .map(|(x, _)| x.table.as_str())
            .collect();
        assert_eq!(changed, vec!["cities"]);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn missing_paths_error_cleanly() {
        let root = temp_root("miss");
        CsvBackend::export_warehouse(&sample_warehouse(), &root).unwrap();
        let b = CsvBackend::open(&root, CdwConfig::free()).unwrap();
        assert!(matches!(
            b.scan_column(&ColumnRef::new("sales", "nope", "x"), SampleSpec::Full),
            Err(StoreError::NotFound(_))
        ));
        assert!(matches!(b.table_meta("nope", "t"), Err(StoreError::NotFound(_))));
        assert!(CsvBackend::open(root.join("does-not-exist"), CdwConfig::free()).is_err());
        std::fs::remove_dir_all(&root).ok();
    }
}
