//! The warehouse catalog: databases, tables, and column addressing.
//!
//! A [`Warehouse`] models one customer's cloud data warehouse: a set of
//! databases, each holding tables. [`ColumnRef`] is the fully-qualified
//! `database.table.column` address used across the workspace — it is what a
//! discovery query names and what recommendations point back to.
//!
//! Under federation a system holds *many* warehouses at once, each
//! attached under a name; [`BackendId`] is that name interned to a small
//! copyable integer (`wg_util::names`), and every [`ColumnRef`] /
//! [`TableRef`] carries one. Un-namespaced refs (the entire pre-federation
//! API surface) belong to the [`BackendId::DEFAULT`] namespace, and both
//! `Display` and parsing keep the legacy `db.table.col` form for it —
//! namespaced refs render as `warehouse:db.table.col`.

use std::fmt;
use std::str::FromStr;

use crate::backend::TableMeta;
use crate::column::Column;
use crate::error::{StoreError, StoreResult};
use crate::table::Table;
use wg_util::codec::{self, CodecResult};

/// Content fingerprint of a table: changes whenever the table's name,
/// schema, or data changes; identical content hashes identically. This is
/// the version token the simulated CDW reports through
/// [`crate::WarehouseBackend::snapshot_versions`].
fn table_fingerprint(table: &Table) -> u64 {
    let mut acc = wg_util::stable_hash_str(table.name());
    for c in table.columns() {
        acc = wg_util::hash::combine64(acc, wg_util::stable_hash_str(c.name()));
        let mut bytes = Vec::with_capacity(c.approx_bytes() + 16);
        c.encode(&mut bytes);
        acc = wg_util::hash::combine64(acc, wg_util::stable_hash64(&bytes));
    }
    acc
}

/// A named backend's identity: the attach name interned to a small
/// integer via `wg_util::names`. Copyable, order-stable, and embeddable
/// in the high bits of an LSH item id (see `wg_lsh`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct BackendId(u16);

impl BackendId {
    /// The legacy single-backend namespace (`"default"`, interner id 0).
    pub const DEFAULT: BackendId = BackendId(0);

    /// The id for an attach name, interning it on first use. Stable for
    /// the process lifetime; `"default"` always maps to
    /// [`BackendId::DEFAULT`].
    pub fn named(name: &str) -> Self {
        BackendId(wg_util::names::intern(name))
    }

    /// The raw interner bits — what `wg_lsh` packs into item ids.
    pub fn bits(self) -> u16 {
        self.0
    }

    /// Rebuild from raw bits (inverse of [`Self::bits`]). Only bits that
    /// came out of this process's interner are meaningful.
    pub fn from_bits(bits: u16) -> Self {
        BackendId(bits)
    }

    /// The attach name behind this id.
    pub fn name(self) -> String {
        wg_util::names::resolve(self.0)
    }

    /// Whether this is the legacy `"default"` namespace.
    pub fn is_default(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for BackendId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BackendId({}:{})", self.0, self.name())
    }
}

impl fmt::Display for BackendId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// Fully-qualified column address: `[warehouse:]database.table.column`.
///
/// The `backend` field is declared first so the derived ordering groups
/// refs by namespace before database/table/column.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnRef {
    /// The backend namespace this column lives in ([`BackendId::DEFAULT`]
    /// for un-namespaced refs).
    pub backend: BackendId,
    /// Database name.
    pub database: String,
    /// Table name.
    pub table: String,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Construct from parts, in the [`BackendId::DEFAULT`] namespace —
    /// the pre-federation constructor every legacy call site keeps using.
    pub fn new(
        database: impl Into<String>,
        table: impl Into<String>,
        column: impl Into<String>,
    ) -> Self {
        Self::scoped(BackendId::DEFAULT, database, table, column)
    }

    /// Construct in an explicit backend namespace.
    pub fn scoped(
        backend: BackendId,
        database: impl Into<String>,
        table: impl Into<String>,
        column: impl Into<String>,
    ) -> Self {
        Self { backend, database: database.into(), table: table.into(), column: column.into() }
    }

    /// The same address re-homed into another namespace.
    pub fn with_backend(mut self, backend: BackendId) -> Self {
        self.backend = backend;
        self
    }

    /// Whether two refs point into the same table *of the same backend* —
    /// identically named tables in different warehouses are different
    /// tables.
    pub fn same_table(&self, other: &ColumnRef) -> bool {
        self.backend == other.backend
            && self.database == other.database
            && self.table == other.table
    }

    /// The table this column belongs to.
    pub fn table_ref(&self) -> TableRef {
        TableRef {
            backend: self.backend,
            database: self.database.clone(),
            table: self.table.clone(),
        }
    }

    /// Wire-encode (namespaced): backend *name* plus the three parts. The
    /// name, not the bits, goes on the wire — interner ids are
    /// process-local.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        codec::put_str(buf, &self.backend.name());
        codec::put_str(buf, &self.database);
        codec::put_str(buf, &self.table);
        codec::put_str(buf, &self.column);
    }

    /// Wire-decode; inverse of [`Self::encode`]. The backend name is
    /// re-interned in the receiving process.
    pub fn decode(buf: &mut impl codec::Buf) -> CodecResult<Self> {
        let backend = BackendId::named(&codec::get_str(buf)?);
        Ok(Self {
            backend,
            database: codec::get_str(buf)?,
            table: codec::get_str(buf)?,
            column: codec::get_str(buf)?,
        })
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.backend.is_default() {
            write!(f, "{}:", self.backend.name())?;
        }
        write!(f, "{}.{}.{}", self.database, self.table, self.column)
    }
}

impl FromStr for ColumnRef {
    type Err = StoreError;

    /// Parse `warehouse:db.table.col` or the legacy `db.table.col` (which
    /// lands in the default namespace).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (backend, rest) = match s.split_once(':') {
            Some((w, rest)) if !w.is_empty() => (BackendId::named(w), rest),
            Some(_) => {
                return Err(StoreError::Schema(format!("empty warehouse name in '{s}'")));
            }
            None => (BackendId::DEFAULT, s),
        };
        let parts: Vec<&str> = rest.split('.').collect();
        match parts.as_slice() {
            [db, t, c] if !db.is_empty() && !t.is_empty() && !c.is_empty() => {
                Ok(ColumnRef::scoped(backend, *db, *t, *c))
            }
            _ => Err(StoreError::Schema(format!(
                "expected [warehouse:]database.table.column, got '{s}'"
            ))),
        }
    }
}

/// Fully-qualified table address: `[warehouse:]database.table`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableRef {
    /// The backend namespace this table lives in.
    pub backend: BackendId,
    /// Database name.
    pub database: String,
    /// Table name.
    pub table: String,
}

impl TableRef {
    /// Construct in the default namespace.
    pub fn new(database: impl Into<String>, table: impl Into<String>) -> Self {
        Self::scoped(BackendId::DEFAULT, database, table)
    }

    /// Construct in an explicit backend namespace.
    pub fn scoped(
        backend: BackendId,
        database: impl Into<String>,
        table: impl Into<String>,
    ) -> Self {
        Self { backend, database: database.into(), table: table.into() }
    }

    /// Whether `column` lives in this table.
    pub fn contains(&self, column: &ColumnRef) -> bool {
        self.backend == column.backend
            && self.database == column.database
            && self.table == column.table
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.backend.is_default() {
            write!(f, "{}:", self.backend.name())?;
        }
        write!(f, "{}.{}", self.database, self.table)
    }
}

/// A named database: a set of tables, each carrying a content version.
#[derive(Debug, Clone)]
pub struct Database {
    name: String,
    tables: Vec<Table>,
    /// Content fingerprint per table, parallel to `tables`. Maintained by
    /// `add_table`/`remove_table` so backends can report what changed.
    versions: Vec<u64>,
}

impl Database {
    /// Create an empty database.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), tables: Vec::new(), versions: Vec::new() }
    }

    /// Database name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add a table; replaces any existing table of the same name (CDW data
    /// "has high update rates" — replacement is the common refresh path).
    /// The table's content version is (re)computed here.
    pub fn add_table(&mut self, table: Table) {
        let version = table_fingerprint(&table);
        if let Some(pos) = self.tables.iter().position(|t| t.name() == table.name()) {
            self.tables[pos] = table;
            self.versions[pos] = version;
        } else {
            self.tables.push(table);
            self.versions.push(version);
        }
    }

    /// Remove a table by name, returning it if present.
    pub fn remove_table(&mut self, name: &str) -> Option<Table> {
        self.tables.iter().position(|t| t.name() == name).map(|pos| {
            self.versions.remove(pos);
            self.tables.remove(pos)
        })
    }

    /// Content-version token for a table, if present. Identical content
    /// yields identical tokens; any data or schema change yields a new one.
    pub fn table_version(&self, name: &str) -> Option<u64> {
        self.tables.iter().position(|t| t.name() == name).map(|pos| self.versions[pos])
    }

    /// Tables zipped with their version tokens, in catalog order.
    fn tables_with_versions(&self) -> impl Iterator<Item = (&Table, u64)> + '_ {
        self.tables.iter().zip(self.versions.iter().copied())
    }

    /// All tables.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Table by name.
    pub fn table(&self, name: &str) -> StoreResult<&Table> {
        self.tables
            .iter()
            .find(|t| t.name() == name)
            .ok_or_else(|| StoreError::NotFound(format!("table '{}.{}'", self.name, name)))
    }
}

/// A simulated cloud data warehouse: a named set of databases.
#[derive(Debug, Clone)]
pub struct Warehouse {
    name: String,
    databases: Vec<Database>,
}

impl Warehouse {
    /// Create an empty warehouse.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), databases: Vec::new() }
    }

    /// Warehouse name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add (or merge into) a database.
    pub fn add_database(&mut self, db: Database) {
        if let Some(pos) = self.databases.iter().position(|d| d.name() == db.name()) {
            self.databases[pos] = db;
        } else {
            self.databases.push(db);
        }
    }

    /// Mutable access to a database, creating it if absent.
    pub fn database_mut(&mut self, name: &str) -> &mut Database {
        if let Some(pos) = self.databases.iter().position(|d| d.name() == name) {
            &mut self.databases[pos]
        } else {
            self.databases.push(Database::new(name));
            self.databases.last_mut().expect("just pushed")
        }
    }

    /// All databases.
    pub fn databases(&self) -> &[Database] {
        &self.databases
    }

    /// Database by name.
    pub fn database(&self, name: &str) -> StoreResult<&Database> {
        self.databases
            .iter()
            .find(|d| d.name() == name)
            .ok_or_else(|| StoreError::NotFound(format!("database '{name}'")))
    }

    /// Resolve a table.
    pub fn table(&self, database: &str, table: &str) -> StoreResult<&Table> {
        self.database(database)?.table(table)
    }

    /// Resolve a column reference.
    pub fn column(&self, r: &ColumnRef) -> StoreResult<&Column> {
        self.table(&r.database, &r.table)?.column(&r.column)
    }

    /// Catalog metadata (columns + content-version token) for every table,
    /// in catalog order (deterministic). This is what the simulated CDW
    /// serves as free information-schema queries.
    pub fn table_metas(&self) -> Vec<TableMeta> {
        self.databases
            .iter()
            .flat_map(|db| {
                db.tables_with_versions().map(move |(t, version)| TableMeta {
                    database: db.name().to_string(),
                    table: t.name().to_string(),
                    columns: t.columns().iter().map(|c| c.name().to_string()).collect(),
                    version,
                })
            })
            .collect()
    }

    /// Metadata for one table.
    pub fn table_meta(&self, database: &str, table: &str) -> StoreResult<TableMeta> {
        let db = self.database(database)?;
        let (t, version) = db
            .tables_with_versions()
            .find(|(t, _)| t.name() == table)
            .ok_or_else(|| StoreError::NotFound(format!("table '{database}.{table}'")))?;
        Ok(TableMeta {
            database: database.to_string(),
            table: table.to_string(),
            columns: t.columns().iter().map(|c| c.name().to_string()).collect(),
            version,
        })
    }

    /// Iterate every column in the warehouse with its address, in catalog
    /// order (deterministic).
    pub fn iter_columns(&self) -> impl Iterator<Item = (ColumnRef, &Column)> + '_ {
        self.databases.iter().flat_map(|db| {
            db.tables().iter().flat_map(move |t| {
                t.columns().iter().map(move |c| (ColumnRef::new(db.name(), t.name(), c.name()), c))
            })
        })
    }

    /// Total number of tables.
    pub fn num_tables(&self) -> usize {
        self.databases.iter().map(|d| d.tables().len()).sum()
    }

    /// Total number of columns.
    pub fn num_columns(&self) -> usize {
        self.databases.iter().flat_map(|d| d.tables()).map(|t| t.num_columns()).sum()
    }

    /// Total number of rows across all tables.
    pub fn num_rows(&self) -> u64 {
        self.databases.iter().flat_map(|d| d.tables()).map(|t| t.num_rows() as u64).sum()
    }

    /// Mean rows per table (0 when empty).
    pub fn avg_rows(&self) -> f64 {
        let tables = self.num_tables();
        if tables == 0 {
            0.0
        } else {
            self.num_rows() as f64 / tables as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wh() -> Warehouse {
        let mut w = Warehouse::new("acme");
        let mut db = Database::new("sales");
        db.add_table(
            Table::new(
                "accounts",
                vec![Column::text("name", ["a", "b"]), Column::ints("id", vec![1, 2])],
            )
            .unwrap(),
        );
        db.add_table(Table::new("leads", vec![Column::text("company", ["a"])]).unwrap());
        w.add_database(db);
        w
    }

    #[test]
    fn column_ref_display() {
        let r = ColumnRef::new("db", "t", "c");
        assert_eq!(r.to_string(), "db.t.c");
        assert!(r.same_table(&ColumnRef::new("db", "t", "other")));
        assert!(!r.same_table(&ColumnRef::new("db2", "t", "c")));
    }

    #[test]
    fn backend_id_defaults_and_names() {
        assert!(BackendId::DEFAULT.is_default());
        assert_eq!(BackendId::default(), BackendId::DEFAULT);
        assert_eq!(BackendId::named("default"), BackendId::DEFAULT);
        assert_eq!(BackendId::DEFAULT.name(), "default");
        let cdw = BackendId::named("catalog-test-cdw");
        assert!(!cdw.is_default());
        assert_eq!(BackendId::named("catalog-test-cdw"), cdw, "interning is idempotent");
        assert_eq!(BackendId::from_bits(cdw.bits()), cdw);
        assert_eq!(cdw.name(), "catalog-test-cdw");
        assert_eq!(cdw.to_string(), "catalog-test-cdw");
    }

    #[test]
    fn namespaced_display_and_same_table() {
        let cdw = BackendId::named("catalog-test-cdw");
        let r = ColumnRef::scoped(cdw, "db", "t", "c");
        assert_eq!(r.to_string(), "catalog-test-cdw:db.t.c");
        // Same db.table under different backends is NOT the same table.
        assert!(!r.same_table(&ColumnRef::new("db", "t", "c")));
        assert!(r.same_table(&ColumnRef::scoped(cdw, "db", "t", "other")));
        let tr = r.table_ref();
        assert_eq!(tr, TableRef::scoped(cdw, "db", "t"));
        assert_eq!(tr.to_string(), "catalog-test-cdw:db.t");
        assert!(tr.contains(&r));
        assert!(!tr.contains(&ColumnRef::new("db", "t", "c")));
        assert!(!TableRef::new("db", "t").contains(&r));
        assert_eq!(r.clone().with_backend(BackendId::DEFAULT), ColumnRef::new("db", "t", "c"));
    }

    #[test]
    fn column_ref_parsing_round_trips() {
        let plain: ColumnRef = "db.t.c".parse().unwrap();
        assert_eq!(plain, ColumnRef::new("db", "t", "c"));
        let scoped: ColumnRef = "catalog-test-lake:db.t.c".parse().unwrap();
        assert_eq!(
            scoped,
            ColumnRef::scoped(BackendId::named("catalog-test-lake"), "db", "t", "c")
        );
        // Display → parse is the identity for both forms.
        assert_eq!(plain.to_string().parse::<ColumnRef>().unwrap(), plain);
        assert_eq!(scoped.to_string().parse::<ColumnRef>().unwrap(), scoped);
        for bad in ["", "db.t", "db.t.c.d", "db..c", ":db.t.c", "w:db.t", "w:"] {
            assert!(bad.parse::<ColumnRef>().is_err(), "'{bad}' must not parse");
        }
    }

    #[test]
    fn column_ref_codec_round_trips() {
        for r in [
            ColumnRef::new("db", "t", "c"),
            ColumnRef::scoped(BackendId::named("catalog-test-cdw"), "sales", "accounts", "name"),
        ] {
            let mut buf = Vec::new();
            r.encode(&mut buf);
            let mut cursor = buf.as_slice();
            assert_eq!(ColumnRef::decode(&mut cursor).unwrap(), r);
            assert!(cursor.is_empty());
        }
        let mut truncated = Vec::new();
        ColumnRef::new("db", "t", "c").encode(&mut truncated);
        truncated.truncate(truncated.len() - 1);
        assert!(ColumnRef::decode(&mut truncated.as_slice()).is_err());
    }

    #[test]
    fn lookups() {
        let w = wh();
        assert!(w.table("sales", "accounts").is_ok());
        assert!(w.table("sales", "nope").is_err());
        assert!(w.table("nope", "accounts").is_err());
        let c = w.column(&ColumnRef::new("sales", "accounts", "id")).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn stats() {
        let w = wh();
        assert_eq!(w.num_tables(), 2);
        assert_eq!(w.num_columns(), 3);
        assert_eq!(w.num_rows(), 3);
        assert!((w.avg_rows() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn iter_columns_is_exhaustive_and_ordered() {
        let w = wh();
        let refs: Vec<String> = w.iter_columns().map(|(r, _)| r.to_string()).collect();
        assert_eq!(refs, vec!["sales.accounts.name", "sales.accounts.id", "sales.leads.company"]);
    }

    #[test]
    fn add_table_replaces() {
        let mut w = wh();
        w.database_mut("sales")
            .add_table(Table::new("leads", vec![Column::text("company", ["x", "y"])]).unwrap());
        assert_eq!(w.table("sales", "leads").unwrap().num_rows(), 2);
        assert_eq!(w.num_tables(), 2);
    }

    #[test]
    fn remove_table() {
        let mut w = wh();
        assert!(w.database_mut("sales").remove_table("leads").is_some());
        assert!(w.database_mut("sales").remove_table("leads").is_none());
        assert_eq!(w.num_tables(), 1);
    }

    #[test]
    fn content_versions_track_table_changes() {
        let mut w = wh();
        let v1 = w.database("sales").unwrap().table_version("leads").unwrap();
        // Re-adding identical content keeps the token stable.
        w.database_mut("sales")
            .add_table(Table::new("leads", vec![Column::text("company", ["a"])]).unwrap());
        let v2 = w.database("sales").unwrap().table_version("leads").unwrap();
        assert_eq!(v1, v2, "identical content must keep the same version token");
        // Changing the data changes the token.
        w.database_mut("sales")
            .add_table(Table::new("leads", vec![Column::text("company", ["a", "b"])]).unwrap());
        let v3 = w.database("sales").unwrap().table_version("leads").unwrap();
        assert_ne!(v2, v3, "content change must produce a new version token");
        // Renaming a column (schema change) also changes the token.
        w.database_mut("sales")
            .add_table(Table::new("leads", vec![Column::text("firm", ["a", "b"])]).unwrap());
        let v4 = w.database("sales").unwrap().table_version("leads").unwrap();
        assert_ne!(v3, v4, "schema change must produce a new version token");
        // Removal drops the version entry alongside the table.
        w.database_mut("sales").remove_table("leads");
        assert_eq!(w.database("sales").unwrap().table_version("leads"), None);
    }

    #[test]
    fn table_metas_cover_the_catalog() {
        let w = wh();
        let metas = w.table_metas();
        assert_eq!(metas.len(), 2);
        assert_eq!(metas[0].table, "accounts");
        assert_eq!(metas[0].columns, vec!["name", "id"]);
        let one = w.table_meta("sales", "accounts").unwrap();
        assert_eq!(one, metas[0]);
        assert!(w.table_meta("sales", "nope").is_err());
    }

    #[test]
    fn database_mut_creates() {
        let mut w = wh();
        w.database_mut("new_db").add_table(Table::new("t", vec![]).unwrap());
        assert!(w.database("new_db").is_ok());
    }
}
