//! The warehouse catalog: databases, tables, and column addressing.
//!
//! A [`Warehouse`] models one customer's cloud data warehouse: a set of
//! databases, each holding tables. [`ColumnRef`] is the fully-qualified
//! `database.table.column` address used across the workspace — it is what a
//! discovery query names and what recommendations point back to.

use std::fmt;

use crate::backend::TableMeta;
use crate::column::Column;
use crate::error::{StoreError, StoreResult};
use crate::table::Table;

/// Content fingerprint of a table: changes whenever the table's name,
/// schema, or data changes; identical content hashes identically. This is
/// the version token the simulated CDW reports through
/// [`crate::WarehouseBackend::snapshot_versions`].
fn table_fingerprint(table: &Table) -> u64 {
    let mut acc = wg_util::stable_hash_str(table.name());
    for c in table.columns() {
        acc = wg_util::hash::combine64(acc, wg_util::stable_hash_str(c.name()));
        let mut bytes = Vec::with_capacity(c.approx_bytes() + 16);
        c.encode(&mut bytes);
        acc = wg_util::hash::combine64(acc, wg_util::stable_hash64(&bytes));
    }
    acc
}

/// Fully-qualified column address: `database.table.column`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnRef {
    /// Database name.
    pub database: String,
    /// Table name.
    pub table: String,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Construct from parts.
    pub fn new(
        database: impl Into<String>,
        table: impl Into<String>,
        column: impl Into<String>,
    ) -> Self {
        Self { database: database.into(), table: table.into(), column: column.into() }
    }

    /// Whether two refs point into the same table.
    pub fn same_table(&self, other: &ColumnRef) -> bool {
        self.database == other.database && self.table == other.table
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.database, self.table, self.column)
    }
}

/// A named database: a set of tables, each carrying a content version.
#[derive(Debug, Clone)]
pub struct Database {
    name: String,
    tables: Vec<Table>,
    /// Content fingerprint per table, parallel to `tables`. Maintained by
    /// `add_table`/`remove_table` so backends can report what changed.
    versions: Vec<u64>,
}

impl Database {
    /// Create an empty database.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), tables: Vec::new(), versions: Vec::new() }
    }

    /// Database name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add a table; replaces any existing table of the same name (CDW data
    /// "has high update rates" — replacement is the common refresh path).
    /// The table's content version is (re)computed here.
    pub fn add_table(&mut self, table: Table) {
        let version = table_fingerprint(&table);
        if let Some(pos) = self.tables.iter().position(|t| t.name() == table.name()) {
            self.tables[pos] = table;
            self.versions[pos] = version;
        } else {
            self.tables.push(table);
            self.versions.push(version);
        }
    }

    /// Remove a table by name, returning it if present.
    pub fn remove_table(&mut self, name: &str) -> Option<Table> {
        self.tables.iter().position(|t| t.name() == name).map(|pos| {
            self.versions.remove(pos);
            self.tables.remove(pos)
        })
    }

    /// Content-version token for a table, if present. Identical content
    /// yields identical tokens; any data or schema change yields a new one.
    pub fn table_version(&self, name: &str) -> Option<u64> {
        self.tables.iter().position(|t| t.name() == name).map(|pos| self.versions[pos])
    }

    /// Tables zipped with their version tokens, in catalog order.
    fn tables_with_versions(&self) -> impl Iterator<Item = (&Table, u64)> + '_ {
        self.tables.iter().zip(self.versions.iter().copied())
    }

    /// All tables.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Table by name.
    pub fn table(&self, name: &str) -> StoreResult<&Table> {
        self.tables
            .iter()
            .find(|t| t.name() == name)
            .ok_or_else(|| StoreError::NotFound(format!("table '{}.{}'", self.name, name)))
    }
}

/// A simulated cloud data warehouse: a named set of databases.
#[derive(Debug, Clone)]
pub struct Warehouse {
    name: String,
    databases: Vec<Database>,
}

impl Warehouse {
    /// Create an empty warehouse.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), databases: Vec::new() }
    }

    /// Warehouse name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add (or merge into) a database.
    pub fn add_database(&mut self, db: Database) {
        if let Some(pos) = self.databases.iter().position(|d| d.name() == db.name()) {
            self.databases[pos] = db;
        } else {
            self.databases.push(db);
        }
    }

    /// Mutable access to a database, creating it if absent.
    pub fn database_mut(&mut self, name: &str) -> &mut Database {
        if let Some(pos) = self.databases.iter().position(|d| d.name() == name) {
            &mut self.databases[pos]
        } else {
            self.databases.push(Database::new(name));
            self.databases.last_mut().expect("just pushed")
        }
    }

    /// All databases.
    pub fn databases(&self) -> &[Database] {
        &self.databases
    }

    /// Database by name.
    pub fn database(&self, name: &str) -> StoreResult<&Database> {
        self.databases
            .iter()
            .find(|d| d.name() == name)
            .ok_or_else(|| StoreError::NotFound(format!("database '{name}'")))
    }

    /// Resolve a table.
    pub fn table(&self, database: &str, table: &str) -> StoreResult<&Table> {
        self.database(database)?.table(table)
    }

    /// Resolve a column reference.
    pub fn column(&self, r: &ColumnRef) -> StoreResult<&Column> {
        self.table(&r.database, &r.table)?.column(&r.column)
    }

    /// Catalog metadata (columns + content-version token) for every table,
    /// in catalog order (deterministic). This is what the simulated CDW
    /// serves as free information-schema queries.
    pub fn table_metas(&self) -> Vec<TableMeta> {
        self.databases
            .iter()
            .flat_map(|db| {
                db.tables_with_versions().map(move |(t, version)| TableMeta {
                    database: db.name().to_string(),
                    table: t.name().to_string(),
                    columns: t.columns().iter().map(|c| c.name().to_string()).collect(),
                    version,
                })
            })
            .collect()
    }

    /// Metadata for one table.
    pub fn table_meta(&self, database: &str, table: &str) -> StoreResult<TableMeta> {
        let db = self.database(database)?;
        let (t, version) = db
            .tables_with_versions()
            .find(|(t, _)| t.name() == table)
            .ok_or_else(|| StoreError::NotFound(format!("table '{database}.{table}'")))?;
        Ok(TableMeta {
            database: database.to_string(),
            table: table.to_string(),
            columns: t.columns().iter().map(|c| c.name().to_string()).collect(),
            version,
        })
    }

    /// Iterate every column in the warehouse with its address, in catalog
    /// order (deterministic).
    pub fn iter_columns(&self) -> impl Iterator<Item = (ColumnRef, &Column)> + '_ {
        self.databases.iter().flat_map(|db| {
            db.tables().iter().flat_map(move |t| {
                t.columns().iter().map(move |c| (ColumnRef::new(db.name(), t.name(), c.name()), c))
            })
        })
    }

    /// Total number of tables.
    pub fn num_tables(&self) -> usize {
        self.databases.iter().map(|d| d.tables().len()).sum()
    }

    /// Total number of columns.
    pub fn num_columns(&self) -> usize {
        self.databases.iter().flat_map(|d| d.tables()).map(|t| t.num_columns()).sum()
    }

    /// Total number of rows across all tables.
    pub fn num_rows(&self) -> u64 {
        self.databases.iter().flat_map(|d| d.tables()).map(|t| t.num_rows() as u64).sum()
    }

    /// Mean rows per table (0 when empty).
    pub fn avg_rows(&self) -> f64 {
        let tables = self.num_tables();
        if tables == 0 {
            0.0
        } else {
            self.num_rows() as f64 / tables as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wh() -> Warehouse {
        let mut w = Warehouse::new("acme");
        let mut db = Database::new("sales");
        db.add_table(
            Table::new(
                "accounts",
                vec![Column::text("name", ["a", "b"]), Column::ints("id", vec![1, 2])],
            )
            .unwrap(),
        );
        db.add_table(Table::new("leads", vec![Column::text("company", ["a"])]).unwrap());
        w.add_database(db);
        w
    }

    #[test]
    fn column_ref_display() {
        let r = ColumnRef::new("db", "t", "c");
        assert_eq!(r.to_string(), "db.t.c");
        assert!(r.same_table(&ColumnRef::new("db", "t", "other")));
        assert!(!r.same_table(&ColumnRef::new("db2", "t", "c")));
    }

    #[test]
    fn lookups() {
        let w = wh();
        assert!(w.table("sales", "accounts").is_ok());
        assert!(w.table("sales", "nope").is_err());
        assert!(w.table("nope", "accounts").is_err());
        let c = w.column(&ColumnRef::new("sales", "accounts", "id")).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn stats() {
        let w = wh();
        assert_eq!(w.num_tables(), 2);
        assert_eq!(w.num_columns(), 3);
        assert_eq!(w.num_rows(), 3);
        assert!((w.avg_rows() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn iter_columns_is_exhaustive_and_ordered() {
        let w = wh();
        let refs: Vec<String> = w.iter_columns().map(|(r, _)| r.to_string()).collect();
        assert_eq!(refs, vec!["sales.accounts.name", "sales.accounts.id", "sales.leads.company"]);
    }

    #[test]
    fn add_table_replaces() {
        let mut w = wh();
        w.database_mut("sales")
            .add_table(Table::new("leads", vec![Column::text("company", ["x", "y"])]).unwrap());
        assert_eq!(w.table("sales", "leads").unwrap().num_rows(), 2);
        assert_eq!(w.num_tables(), 2);
    }

    #[test]
    fn remove_table() {
        let mut w = wh();
        assert!(w.database_mut("sales").remove_table("leads").is_some());
        assert!(w.database_mut("sales").remove_table("leads").is_none());
        assert_eq!(w.num_tables(), 1);
    }

    #[test]
    fn content_versions_track_table_changes() {
        let mut w = wh();
        let v1 = w.database("sales").unwrap().table_version("leads").unwrap();
        // Re-adding identical content keeps the token stable.
        w.database_mut("sales")
            .add_table(Table::new("leads", vec![Column::text("company", ["a"])]).unwrap());
        let v2 = w.database("sales").unwrap().table_version("leads").unwrap();
        assert_eq!(v1, v2, "identical content must keep the same version token");
        // Changing the data changes the token.
        w.database_mut("sales")
            .add_table(Table::new("leads", vec![Column::text("company", ["a", "b"])]).unwrap());
        let v3 = w.database("sales").unwrap().table_version("leads").unwrap();
        assert_ne!(v2, v3, "content change must produce a new version token");
        // Renaming a column (schema change) also changes the token.
        w.database_mut("sales")
            .add_table(Table::new("leads", vec![Column::text("firm", ["a", "b"])]).unwrap());
        let v4 = w.database("sales").unwrap().table_version("leads").unwrap();
        assert_ne!(v3, v4, "schema change must produce a new version token");
        // Removal drops the version entry alongside the table.
        w.database_mut("sales").remove_table("leads");
        assert_eq!(w.database("sales").unwrap().table_version("leads"), None);
    }

    #[test]
    fn table_metas_cover_the_catalog() {
        let w = wh();
        let metas = w.table_metas();
        assert_eq!(metas.len(), 2);
        assert_eq!(metas[0].table, "accounts");
        assert_eq!(metas[0].columns, vec!["name", "id"]);
        let one = w.table_meta("sales", "accounts").unwrap();
        assert_eq!(one, metas[0]);
        assert!(w.table_meta("sales", "nope").is_err());
    }

    #[test]
    fn database_mut_creates() {
        let mut w = wh();
        w.database_mut("new_db").add_table(Table::new("t", vec![]).unwrap());
        assert!(w.database("new_db").is_ok());
    }
}
