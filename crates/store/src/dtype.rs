//! Column data types and type inference.

use std::fmt;

/// The four storage types of the column store.
///
/// Dates, identifiers, categorical codes etc. are all stored as one of
/// these; richer semantics live in the profiling / embedding layers, which
/// is where the paper places them too (embeddings capture semantics, the
/// store only moves bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// UTF-8 text.
    Text,
}

impl DataType {
    /// Stable single-byte tag for the wire codec.
    pub fn tag(self) -> u8 {
        match self {
            DataType::Bool => 0,
            DataType::Int => 1,
            DataType::Float => 2,
            DataType::Text => 3,
        }
    }

    /// Inverse of [`DataType::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(DataType::Bool),
            1 => Some(DataType::Int),
            2 => Some(DataType::Float),
            3 => Some(DataType::Text),
            _ => None,
        }
    }

    /// Whether values of this type carry text usable for token embeddings.
    pub fn is_text(self) -> bool {
        matches!(self, DataType::Text)
    }

    /// Whether values of this type are numeric.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Text => "text",
        };
        f.write_str(s)
    }
}

/// Infer the narrowest type that can represent a raw string cell.
///
/// Empty strings are `None` (NULL). The order is int → float → bool → text,
/// matching common CSV-loader behaviour; note `"1"`/`"0"` infer as Int, not
/// Bool, so boolean inference only triggers on `true`/`false` spellings.
pub fn infer_cell(raw: &str) -> Option<DataType> {
    let t = raw.trim();
    if t.is_empty() {
        return None;
    }
    if parse_int(t).is_some() {
        return Some(DataType::Int);
    }
    if parse_float(t).is_some() {
        return Some(DataType::Float);
    }
    if parse_bool(t).is_some() {
        return Some(DataType::Bool);
    }
    Some(DataType::Text)
}

/// Merge two inferred types into the narrowest common supertype.
pub fn unify(a: DataType, b: DataType) -> DataType {
    use DataType::*;
    match (a, b) {
        (x, y) if x == y => x,
        (Int, Float) | (Float, Int) => Float,
        _ => Text,
    }
}

/// Strict integer parse (no leading `+` handling beyond std, no underscores).
pub fn parse_int(s: &str) -> Option<i64> {
    s.parse::<i64>().ok()
}

/// Float parse, rejecting values like `inf`/`nan` that rarely denote data.
pub fn parse_float(s: &str) -> Option<f64> {
    let x = s.parse::<f64>().ok()?;
    if x.is_finite() {
        Some(x)
    } else {
        None
    }
}

/// Boolean parse accepting `true`/`false` in any case.
pub fn parse_bool(s: &str) -> Option<bool> {
    if s.eq_ignore_ascii_case("true") {
        Some(true)
    } else if s.eq_ignore_ascii_case("false") {
        Some(false)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_roundtrip() {
        for t in [DataType::Bool, DataType::Int, DataType::Float, DataType::Text] {
            assert_eq!(DataType::from_tag(t.tag()), Some(t));
        }
        assert_eq!(DataType::from_tag(9), None);
    }

    #[test]
    fn inference_order() {
        assert_eq!(infer_cell("42"), Some(DataType::Int));
        assert_eq!(infer_cell("-1"), Some(DataType::Int));
        assert_eq!(infer_cell("3.25"), Some(DataType::Float));
        assert_eq!(infer_cell("1e3"), Some(DataType::Float));
        assert_eq!(infer_cell("true"), Some(DataType::Bool));
        assert_eq!(infer_cell("FALSE"), Some(DataType::Bool));
        assert_eq!(infer_cell("hello"), Some(DataType::Text));
        assert_eq!(infer_cell(""), None);
        assert_eq!(infer_cell("  "), None);
    }

    #[test]
    fn inf_and_nan_are_text() {
        assert_eq!(infer_cell("inf"), Some(DataType::Text));
        assert_eq!(infer_cell("NaN"), Some(DataType::Text));
    }

    #[test]
    fn unify_widens() {
        assert_eq!(unify(DataType::Int, DataType::Int), DataType::Int);
        assert_eq!(unify(DataType::Int, DataType::Float), DataType::Float);
        assert_eq!(unify(DataType::Float, DataType::Text), DataType::Text);
        assert_eq!(unify(DataType::Bool, DataType::Int), DataType::Text);
    }
}
