//! Join execution and value-overlap measures.
//!
//! Two consumers:
//!
//! * **Sigma's `Lookup`** (§2.1): once WarpGate recommends a join path, the
//!   product executes a *cardinality-preserving* join to pull columns from
//!   the candidate table next to the query column. [`lookup_join`] is that
//!   operator: a left outer join keeping exactly one match per base row.
//! * **Ground truth & baselines**: join-quality labels (NextiaJD-style) and
//!   Aurum's syntactic edges are defined over [`containment`] and
//!   [`jaccard`] of distinct value sets.
//!
//! [`KeyNorm`] captures the "semantically joinable after transformation"
//! notion from the problem statement: keys can be compared raw, case-folded,
//! or reduced to alphanumerics.

use wg_util::{FxHashMap, FxHashSet};

use crate::column::Column;
use crate::error::StoreResult;
use crate::table::Table;
use crate::value::ValueRef;

/// Join flavors supported by [`hash_join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Keep only matching rows (all matches).
    Inner,
    /// Keep every left row; unmatched right side becomes NULL (all matches).
    LeftOuter,
}

/// Key normalization applied before comparing join keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KeyNorm {
    /// Compare values exactly (type-tagged).
    #[default]
    Exact,
    /// Render to text and case-fold + trim. Makes `"Apple Inc."` match
    /// `"APPLE INC. "`.
    CaseFold,
    /// Render to text, lowercase, and strip every non-alphanumeric rune.
    /// Makes `"Apple, Inc."` match `"apple inc"`.
    AlphaNum,
}

impl KeyNorm {
    /// The normalized key bytes for a value, or `None` for NULL (NULL never
    /// matches NULL, as in SQL).
    pub fn key_of(&self, v: ValueRef<'_>, scratch: &mut Vec<u8>) -> Option<u64> {
        if v.is_null() {
            return None;
        }
        match self {
            KeyNorm::Exact => {
                v.key_bytes(scratch);
                Some(wg_util::stable_hash64(scratch))
            }
            KeyNorm::CaseFold => {
                let s = v.to_string();
                let folded = s.trim().to_lowercase();
                Some(wg_util::stable_hash_str(&folded))
            }
            KeyNorm::AlphaNum => {
                let s = v.to_string();
                let folded: String = s
                    .chars()
                    .filter(|c| c.is_alphanumeric())
                    .flat_map(|c| c.to_lowercase())
                    .collect();
                if folded.is_empty() {
                    None
                } else {
                    Some(wg_util::stable_hash_str(&folded))
                }
            }
        }
    }
}

/// Hash join between two tables on one key column each.
///
/// Output columns: all left columns, then all right columns except the right
/// key; name collisions on the right gain a `right_` prefix.
pub fn hash_join(
    left: &Table,
    left_key: &str,
    right: &Table,
    right_key: &str,
    join_type: JoinType,
    norm: KeyNorm,
) -> StoreResult<Table> {
    let lk = left.column(left_key)?;
    let rk = right.column(right_key)?;

    // Build phase over the right side: key -> row indices.
    let mut build: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
    let mut scratch = Vec::new();
    for row in 0..rk.len() {
        if let Some(h) = norm.key_of(rk.get(row), &mut scratch) {
            build.entry(h).or_default().push(row);
        }
    }

    // Probe phase.
    let mut left_idx: Vec<usize> = Vec::new();
    let mut right_idx: Vec<Option<usize>> = Vec::new();
    for row in 0..lk.len() {
        match norm.key_of(lk.get(row), &mut scratch).and_then(|h| build.get(&h)) {
            Some(matches) => {
                for &m in matches {
                    left_idx.push(row);
                    right_idx.push(Some(m));
                }
            }
            None => {
                if join_type == JoinType::LeftOuter {
                    left_idx.push(row);
                    right_idx.push(None);
                }
            }
        }
    }

    assemble(left, right, right_key, &left_idx, &right_idx)
}

/// Cardinality-preserving lookup join (Sigma Workbooks' `Lookup`): a left
/// outer join that keeps **exactly one row per base row**, taking the first
/// match in right-table order. `add_columns` names the right-side columns to
/// append; pass an empty slice to append every non-key column.
pub fn lookup_join(
    base: &Table,
    base_key: &str,
    lookup: &Table,
    lookup_key: &str,
    add_columns: &[&str],
    norm: KeyNorm,
) -> StoreResult<Table> {
    let lk = base.column(base_key)?;
    let rk = lookup.column(lookup_key)?;

    let mut build: FxHashMap<u64, usize> = FxHashMap::default();
    let mut scratch = Vec::new();
    for row in 0..rk.len() {
        if let Some(h) = norm.key_of(rk.get(row), &mut scratch) {
            // Keep the FIRST match; later duplicates never shadow it.
            build.entry(h).or_insert(row);
        }
    }

    let mut right_idx: Vec<Option<usize>> = Vec::with_capacity(lk.len());
    for row in 0..lk.len() {
        right_idx.push(norm.key_of(lk.get(row), &mut scratch).and_then(|h| build.get(&h).copied()));
    }

    // Choose which right columns to append.
    let chosen: Vec<&Column> = if add_columns.is_empty() {
        lookup.columns().iter().filter(|c| c.name() != lookup_key).collect()
    } else {
        let mut v = Vec::with_capacity(add_columns.len());
        for name in add_columns {
            v.push(lookup.column(name)?);
        }
        v
    };

    let mut out = base.clone();
    for rc in chosen {
        let gathered = gather_optional(rc, &right_idx);
        let name = disambiguate(&out, rc.name());
        out = out.with_column(gathered.renamed(name))?;
    }
    Ok(out)
}

fn assemble(
    left: &Table,
    right: &Table,
    right_key: &str,
    left_idx: &[usize],
    right_idx: &[Option<usize>],
) -> StoreResult<Table> {
    let mut columns: Vec<Column> = Vec::with_capacity(left.num_columns() + right.num_columns());
    for c in left.columns() {
        columns.push(c.take(left_idx));
    }
    let mut out = Table::new(format!("{}_join_{}", left.name(), right.name()), columns)?;
    for c in right.columns() {
        if c.name() == right_key {
            continue;
        }
        let gathered = gather_optional(c, right_idx);
        let name = disambiguate(&out, c.name());
        out = out.with_column(gathered.renamed(name))?;
    }
    Ok(out)
}

/// Gather rows from `col` by optional index; `None` becomes NULL.
fn gather_optional(col: &Column, idx: &[Option<usize>]) -> Column {
    use crate::value::Value;
    // Route through owned values: simple, and join outputs are small
    // relative to scans. (The inner hot path is the hash probe, not this.)
    let values: Vec<Value> = idx
        .iter()
        .map(|i| match i {
            Some(r) => col.get(*r).to_owned(),
            None => Value::Null,
        })
        .collect();
    Column::from_values(col.name(), &values)
}

fn disambiguate(t: &Table, name: &str) -> String {
    if t.column_index(name).is_none() {
        return name.to_string();
    }
    let mut candidate = format!("right_{name}");
    let mut i = 2;
    while t.column_index(&candidate).is_some() {
        candidate = format!("right{i}_{name}");
        i += 1;
    }
    candidate
}

/// Distinct normalized key set of a column.
fn key_set(col: &Column, norm: KeyNorm) -> FxHashSet<u64> {
    let mut set = FxHashSet::default();
    let mut scratch = Vec::new();
    for v in col.iter() {
        if let Some(h) = norm.key_of(v, &mut scratch) {
            set.insert(h);
        }
    }
    set
}

/// Containment of `a` in `b`: `|distinct(a) ∩ distinct(b)| / |distinct(a)|`.
/// Returns 0.0 when `a` has no non-null values.
pub fn containment(a: &Column, b: &Column, norm: KeyNorm) -> f64 {
    let sa = key_set(a, norm);
    if sa.is_empty() {
        return 0.0;
    }
    let sb = key_set(b, norm);
    let inter = sa.iter().filter(|h| sb.contains(*h)).count();
    inter as f64 / sa.len() as f64
}

/// Jaccard similarity of the distinct value sets.
pub fn jaccard(a: &Column, b: &Column, norm: KeyNorm) -> f64 {
    let sa = key_set(a, norm);
    let sb = key_set(b, norm);
    if sa.is_empty() && sb.is_empty() {
        return 0.0;
    }
    let inter = sa.iter().filter(|h| sb.contains(*h)).count();
    inter as f64 / (sa.len() + sb.len() - inter) as f64
}

/// Cardinality proportion: `min(|A|,|B|) / max(|A|,|B|)` over distinct
/// counts — the second ingredient of NextiaJD's join-quality rule.
pub fn cardinality_proportion(a: &Column, b: &Column, norm: KeyNorm) -> f64 {
    let na = key_set(a, norm).len();
    let nb = key_set(b, norm).len();
    if na == 0 || nb == 0 {
        return 0.0;
    }
    (na.min(nb) as f64) / (na.max(nb) as f64)
}

/// Guard against degenerate joins (used by examples): true when the lookup
/// key is unique in the lookup table, i.e. the join is N:1 and cardinality
/// preservation is exact rather than first-match-wins.
pub fn key_is_unique(col: &Column, norm: KeyNorm) -> bool {
    let mut set = FxHashSet::default();
    let mut scratch = Vec::new();
    for v in col.iter() {
        if let Some(h) = norm.key_of(v, &mut scratch) {
            if !set.insert(h) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::StoreError;
    use crate::value::ValueRef;

    fn accounts() -> Table {
        Table::new(
            "accounts",
            vec![
                Column::text("name", ["Acme Corp", "Globex", "Initech", "Hooli"]),
                Column::ints("size", vec![100, 200, 50, 900]),
            ],
        )
        .unwrap()
    }

    fn industries() -> Table {
        Table::new(
            "industries",
            vec![
                Column::text("company", ["ACME CORP", "INITECH", "UMBRELLA"]),
                Column::text("sector", ["Manufacturing", "Software", "Biotech"]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn inner_join_exact() {
        let l = Table::new("l", vec![Column::ints("k", vec![1, 2, 3])]).unwrap();
        let r = Table::new(
            "r",
            vec![Column::ints("k", vec![2, 3, 4]), Column::text("v", ["b", "c", "d"])],
        )
        .unwrap();
        let j = hash_join(&l, "k", &r, "k", JoinType::Inner, KeyNorm::Exact).unwrap();
        assert_eq!(j.num_rows(), 2);
        assert_eq!(j.column("v").unwrap().get(0), ValueRef::Text("b"));
    }

    #[test]
    fn left_outer_keeps_unmatched() {
        let l = Table::new("l", vec![Column::ints("k", vec![1, 2])]).unwrap();
        let r =
            Table::new("r", vec![Column::ints("k", vec![2]), Column::text("v", ["b"])]).unwrap();
        let j = hash_join(&l, "k", &r, "k", JoinType::LeftOuter, KeyNorm::Exact).unwrap();
        assert_eq!(j.num_rows(), 2);
        assert_eq!(j.column("v").unwrap().get(0), ValueRef::Null);
        assert_eq!(j.column("v").unwrap().get(1), ValueRef::Text("b"));
    }

    #[test]
    fn inner_join_multiplies_matches() {
        let l = Table::new("l", vec![Column::ints("k", vec![1])]).unwrap();
        let r = Table::new("r", vec![Column::ints("k", vec![1, 1]), Column::text("v", ["a", "b"])])
            .unwrap();
        let j = hash_join(&l, "k", &r, "k", JoinType::Inner, KeyNorm::Exact).unwrap();
        assert_eq!(j.num_rows(), 2);
    }

    #[test]
    fn lookup_join_preserves_cardinality() {
        let base = accounts();
        let aug =
            lookup_join(&base, "name", &industries(), "company", &["sector"], KeyNorm::CaseFold)
                .unwrap();
        assert_eq!(aug.num_rows(), base.num_rows(), "cardinality preserved");
        assert_eq!(aug.column("sector").unwrap().get(0), ValueRef::Text("Manufacturing"));
        assert_eq!(aug.column("sector").unwrap().get(1), ValueRef::Null);
    }

    #[test]
    fn lookup_join_takes_first_match() {
        let base = Table::new("b", vec![Column::ints("k", vec![1])]).unwrap();
        let lk = Table::new(
            "l",
            vec![Column::ints("k", vec![1, 1]), Column::text("v", ["first", "second"])],
        )
        .unwrap();
        let j = lookup_join(&base, "k", &lk, "k", &[], KeyNorm::Exact).unwrap();
        assert_eq!(j.num_rows(), 1);
        assert_eq!(j.column("v").unwrap().get(0), ValueRef::Text("first"));
    }

    #[test]
    fn lookup_join_disambiguates_names() {
        let base =
            Table::new("b", vec![Column::ints("k", vec![1]), Column::text("v", ["x"])]).unwrap();
        let lk =
            Table::new("l", vec![Column::ints("k", vec![1]), Column::text("v", ["y"])]).unwrap();
        let j = lookup_join(&base, "k", &lk, "k", &[], KeyNorm::Exact).unwrap();
        assert_eq!(j.column("right_v").unwrap().get(0), ValueRef::Text("y"));
    }

    #[test]
    fn norms_change_matching() {
        let a = Column::text("a", ["Apple, Inc."]);
        let b = Column::text("b", ["apple inc"]);
        assert_eq!(containment(&a, &b, KeyNorm::Exact), 0.0);
        assert_eq!(containment(&a, &b, KeyNorm::CaseFold), 0.0);
        assert_eq!(containment(&a, &b, KeyNorm::AlphaNum), 1.0);
    }

    #[test]
    fn containment_vs_jaccard_asymmetry() {
        // FK ⊂ PK: containment of FK in PK is 1.0, Jaccard much lower —
        // the asymmetry behind Aurum's misses on Spider (§4.3.2).
        let pk = Column::ints("pk", (0..100).collect());
        let fk = Column::ints("fk", (0..10).collect());
        assert_eq!(containment(&fk, &pk, KeyNorm::Exact), 1.0);
        let j = jaccard(&fk, &pk, KeyNorm::Exact);
        assert!(j < 0.11, "jaccard {j}");
        assert!((cardinality_proportion(&fk, &pk, KeyNorm::Exact) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn null_keys_never_match() {
        let l = Table::new("l", vec![Column::text_opt("k", [None, Some("x")])]).unwrap();
        let r = Table::new(
            "r",
            vec![Column::text_opt("k", [None::<&str>]), Column::ints("v", vec![9])],
        )
        .unwrap();
        let j = hash_join(&l, "k", &r, "k", JoinType::Inner, KeyNorm::Exact).unwrap();
        assert_eq!(j.num_rows(), 0);
    }

    #[test]
    fn key_uniqueness() {
        assert!(key_is_unique(&Column::ints("k", vec![1, 2, 3]), KeyNorm::Exact));
        assert!(!key_is_unique(&Column::ints("k", vec![1, 1]), KeyNorm::Exact));
        // Case folding can merge previously-distinct keys.
        assert!(!key_is_unique(&Column::text("k", ["A", "a"]), KeyNorm::CaseFold));
    }

    #[test]
    fn join_errors_on_missing_key() {
        let l = accounts();
        let r = industries();
        assert!(hash_join(&l, "nope", &r, "company", JoinType::Inner, KeyNorm::Exact).is_err());
        assert!(matches!(
            lookup_join(&l, "name", &r, "company", &["nope"], KeyNorm::Exact),
            Err(StoreError::NotFound(_))
        ));
    }
}
