//! The pluggable warehouse-backend abstraction.
//!
//! WarpGate's premise is join discovery *over cloud data warehouses* —
//! plural. The system core must not care whether columns come from a
//! Snowflake-shaped service, a directory of CSV exports, or a test double
//! that injects faults; it needs exactly four capabilities (catalog
//! listing, sampled scans, cost metering, and a change-token surface for
//! incremental sync). [`WarehouseBackend`] is that seam.
//!
//! Implementations in this crate:
//!
//! * [`crate::CdwConnector`] — the simulated cloud data warehouse (wire
//!   codec round trips, per-byte billing, virtual latency);
//! * [`crate::CsvBackend`] — a directory of `<database>/<table>.csv`
//!   files served through the same cost model;
//! * [`crate::FaultInjector`] — a wrapper that injects deterministic scan
//!   failures and extra latency into any inner backend, for resilience
//!   scenarios.
//!
//! ## Contract
//!
//! * **Metadata is free.** `list_tables`, `table_meta`, `validate_column`
//!   and `snapshot_versions` model catalog/information-schema queries,
//!   which CDW vendors do not bill as scans. They must not touch the
//!   meter.
//! * **Scans are billed.** `scan_column`/`scan_table` move data and must
//!   charge the meter proportionally to bytes actually serialized (after
//!   sampling push-down).
//! * **Version tokens are opaque.** A table's `version` must change
//!   whenever its content changes, and should not change otherwise.
//!   Tokens are comparable only against tokens from the *same* backend
//!   instance; `warpgate_core::WarpGate::sync` diffs them to re-index
//!   only what moved.

use std::sync::Arc;

use crate::catalog::{BackendId, ColumnRef};
use crate::cdw::CostSnapshot;
use crate::column::Column;
use crate::error::{StoreError, StoreResult};
use crate::sample::SampleSpec;
use crate::table::Table;

/// Shared, thread-safe handle to a warehouse backend — what
/// `warpgate_core::WarpGate` attaches to and what the evaluation harness
/// passes around.
pub type BackendHandle = Arc<dyn WarehouseBackend>;

/// Catalog metadata for one table: address, column names, and the
/// content-version token used for incremental sync.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableMeta {
    /// Database the table lives in.
    pub database: String,
    /// Table name.
    pub table: String,
    /// Column names, in table order.
    pub columns: Vec<String>,
    /// Opaque content-version token; changes whenever the table's data
    /// changes.
    pub version: u64,
}

impl TableMeta {
    /// Fully-qualified refs for every column of this table, in the default
    /// namespace.
    pub fn column_refs(&self) -> Vec<ColumnRef> {
        self.scoped_column_refs(BackendId::DEFAULT)
    }

    /// Fully-qualified refs for every column of this table, homed in a
    /// backend namespace. Backends themselves report backend-relative
    /// metadata; the federation layer scopes it at attach time.
    pub fn scoped_column_refs(&self, backend: BackendId) -> Vec<ColumnRef> {
        self.columns
            .iter()
            .map(|c| {
                ColumnRef::scoped(backend, self.database.clone(), self.table.clone(), c.clone())
            })
            .collect()
    }
}

/// One entry of the change-token surface: `(table address, version)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableVersion {
    /// Database the table lives in.
    pub database: String,
    /// Table name.
    pub table: String,
    /// Opaque content-version token.
    pub version: u64,
}

/// A warehouse WarpGate can index and query.
///
/// See the module docs for the metadata-is-free / scans-are-billed /
/// opaque-version contract implementations must follow.
pub trait WarehouseBackend: Send + Sync {
    /// Human-readable backend identity (warehouse name, directory path, …).
    fn name(&self) -> String;

    /// Every table in the warehouse with its columns and version token,
    /// in a deterministic catalog order. Free (metadata).
    fn list_tables(&self) -> StoreResult<Vec<TableMeta>>;

    /// Metadata for one table. Free (metadata).
    fn table_meta(&self, database: &str, table: &str) -> StoreResult<TableMeta>;

    /// Scan one column with sampling pushed down. Billed.
    fn scan_column(&self, r: &ColumnRef, sample: SampleSpec) -> StoreResult<Column>;

    /// Scan a whole table (one request; all columns share the row
    /// sample). Billed.
    fn scan_table(&self, database: &str, table: &str, sample: SampleSpec) -> StoreResult<Table>;

    /// Accumulated scan costs since construction or the last reset.
    fn costs(&self) -> CostSnapshot;

    /// Zero the cost meter (e.g. between indexing and query phases).
    fn reset_costs(&self);

    /// Check that a column exists without scanning it. Free (metadata).
    fn validate_column(&self, r: &ColumnRef) -> StoreResult<()> {
        let meta = self.table_meta(&r.database, &r.table)?;
        if meta.columns.iter().any(|c| c == &r.column) {
            Ok(())
        } else {
            Err(StoreError::NotFound(format!("column '{r}'")))
        }
    }

    /// The change-token surface: every table's current version. Free
    /// (metadata). The default derives it from [`Self::list_tables`];
    /// backends with a cheaper path may override.
    fn snapshot_versions(&self) -> StoreResult<Vec<TableVersion>> {
        Ok(self
            .list_tables()?
            .into_iter()
            .map(|m| TableVersion { database: m.database, table: m.table, version: m.version })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Database, Warehouse};
    use crate::cdw::{CdwConfig, CdwConnector};

    fn backend() -> CdwConnector {
        let mut w = Warehouse::new("w");
        let mut db = Database::new("db");
        db.add_table(
            Table::new("t", vec![Column::text("a", ["x", "y"]), Column::ints("b", vec![1, 2])])
                .unwrap(),
        );
        w.add_database(db);
        CdwConnector::new(w, CdwConfig::free())
    }

    #[test]
    fn default_validate_column_checks_membership() {
        let b = backend();
        let b: &dyn WarehouseBackend = &b;
        assert!(b.validate_column(&ColumnRef::new("db", "t", "a")).is_ok());
        assert!(b.validate_column(&ColumnRef::new("db", "t", "nope")).is_err());
        assert!(b.validate_column(&ColumnRef::new("db", "nope", "a")).is_err());
    }

    #[test]
    fn default_snapshot_versions_mirrors_list_tables() {
        let b = backend();
        let b: &dyn WarehouseBackend = &b;
        let metas = b.list_tables().unwrap();
        let versions = b.snapshot_versions().unwrap();
        assert_eq!(metas.len(), versions.len());
        for (m, v) in metas.iter().zip(&versions) {
            assert_eq!(
                (m.database.as_str(), m.table.as_str()),
                (v.database.as_str(), v.table.as_str())
            );
            assert_eq!(m.version, v.version);
        }
    }

    #[test]
    fn metadata_is_free() {
        let b = backend();
        let b: &dyn WarehouseBackend = &b;
        b.list_tables().unwrap();
        b.table_meta("db", "t").unwrap();
        b.validate_column(&ColumnRef::new("db", "t", "a")).unwrap();
        b.snapshot_versions().unwrap();
        assert_eq!(b.costs().requests, 0, "metadata queries must not be billed");
    }

    #[test]
    fn column_refs_are_fully_qualified() {
        let meta = TableMeta {
            database: "db".into(),
            table: "t".into(),
            columns: vec!["a".into(), "b".into()],
            version: 7,
        };
        assert_eq!(
            meta.column_refs(),
            vec![ColumnRef::new("db", "t", "a"), ColumnRef::new("db", "t", "b")]
        );
        let lake = BackendId::named("backend-test-lake");
        assert_eq!(
            meta.scoped_column_refs(lake),
            vec![ColumnRef::scoped(lake, "db", "t", "a"), ColumnRef::scoped(lake, "db", "t", "b")]
        );
    }
}
