//! Error type for store operations.

use wg_util::codec::CodecError;

/// Errors from catalog lookups, CSV parsing, joins and CDW scans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A database, table or column was not found.
    NotFound(String),
    /// CSV input violated the expected structure.
    Csv { line: usize, message: String },
    /// Columns of mismatched lengths, duplicate names, etc.
    Schema(String),
    /// A join was requested on incompatible or missing keys.
    Join(String),
    /// A wire frame or persisted artifact failed to decode.
    Codec(CodecError),
    /// A warehouse backend failed: I/O on a file-backed backend, an
    /// injected fault, or an operation that needs an attached backend.
    Backend(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NotFound(what) => write!(f, "not found: {what}"),
            StoreError::Csv { line, message } => {
                write!(f, "CSV error at line {line}: {message}")
            }
            StoreError::Schema(msg) => write!(f, "schema error: {msg}"),
            StoreError::Join(msg) => write!(f, "join error: {msg}"),
            StoreError::Codec(e) => write!(f, "codec error: {e}"),
            StoreError::Backend(msg) => write!(f, "backend error: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

/// Result alias for store operations.
pub type StoreResult<T> = Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(StoreError::NotFound("db.t.c".into()).to_string(), "not found: db.t.c");
        assert!(StoreError::Csv { line: 3, message: "unterminated quote".into() }
            .to_string()
            .contains("line 3"));
    }

    #[test]
    fn codec_error_converts() {
        let e: StoreError = CodecError::UnexpectedEof.into();
        assert!(matches!(e, StoreError::Codec(_)));
    }
}
