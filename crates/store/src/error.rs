//! Error type for store operations, classified for retry middleware.
//!
//! Every [`StoreError`] is either **transient** (the same call may succeed
//! if repeated — a flaky link, a suspended warehouse, an injected fault)
//! or **fatal** (repeating the call cannot help — a missing table, a
//! schema violation, corrupt bytes). [`StoreError::is_retryable`] is the
//! single source of truth for that classification; retry middleware like
//! [`crate::RetryBackend`] keys off it and nothing else.
//!
//! The enum is `#[non_exhaustive]`: downstream crates must match with a
//! wildcard arm, so adding a variant here can never silently fall through
//! an external match. *Inside* this crate every match stays exhaustive on
//! purpose — a new variant then fails to compile until it is classified in
//! `is_retryable`, displayed, and wired through the remote-backend codec.

use wg_util::codec::CodecError;
use wg_util::deadline::Phase;

/// Errors from catalog lookups, CSV parsing, joins and CDW scans.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// A database, table or column was not found. Fatal.
    NotFound(String),
    /// CSV input violated the expected structure. Fatal.
    Csv {
        /// 1-based line of the offending record.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Columns of mismatched lengths, duplicate names, etc. Fatal.
    Schema(String),
    /// A join was requested on incompatible or missing keys. Fatal.
    Join(String),
    /// A wire frame or persisted artifact failed to decode. Fatal (the
    /// bytes will not un-corrupt themselves).
    Codec(CodecError),
    /// A warehouse backend failed in a way a retry cannot fix:
    /// misconfiguration, unreadable files, no backend attached. Fatal.
    Backend(String),
    /// A persisted snapshot failed its integrity check: checksum mismatch,
    /// torn frame, truncation, or trailing garbage. Fatal for *this* file —
    /// recovery falls back to the previous checkpoint generation instead
    /// of retrying (see `warpgate_core::durability`).
    SnapshotCorrupt(String),
    /// A transient backend failure: connection reset, timeout, suspended
    /// warehouse, injected fault. **Retryable** — the only variant that is.
    Unavailable(String),
    /// Retry middleware exhausted its attempt or backoff budget; wraps the
    /// last transient error. Fatal (the budget is spent).
    RetriesExhausted {
        /// Total attempts made, the initial call included.
        attempts: u32,
        /// The transient error the final attempt died on.
        last: Box<StoreError>,
    },
    /// Admission control shed this request: the concurrency cap and its
    /// bounded wait queue were both full, or the queue wait timed out.
    /// **Retryable** — the server is healthy, just busy; back off for
    /// roughly the hinted interval and try again.
    Overloaded {
        /// Suggested client backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// A tenant exceeded its token-bucket budget of billed scans/bytes.
    /// **Retryable** — the bucket refills with time; retrying after the
    /// refill interval may succeed. Other tenants are unaffected.
    QuotaExceeded {
        /// The over-budget tenant's name.
        tenant: String,
    },
    /// The request's cooperative deadline expired before the pipeline
    /// finished; `phase` is the boundary the budget died at, with no
    /// further billed work started past it. Fatal — the caller's budget
    /// is spent, retrying the same budget would expire the same way.
    DeadlineExceeded {
        /// Pipeline phase whose boundary check observed the expiry.
        phase: Phase,
    },
}

impl StoreError {
    /// Whether retrying the failed call may succeed. This is the
    /// classification [`crate::RetryBackend`] acts on: transient failures
    /// retry with backoff, everything else propagates immediately.
    pub fn is_retryable(&self) -> bool {
        // Exhaustive on purpose: a new variant must be classified here
        // before the crate compiles again.
        match self {
            // Busy and over-budget conditions clear with time; the hinted
            // backoff (Overloaded) or bucket refill (QuotaExceeded) makes
            // the same call succeed later.
            StoreError::Unavailable(_)
            | StoreError::Overloaded { .. }
            | StoreError::QuotaExceeded { .. } => true,
            // An expired deadline is the caller's spent budget: the retry
            // would run against the same dead clock. The caller must mint
            // a fresh deadline, which is a new request, not a retry.
            StoreError::DeadlineExceeded { .. } => false,
            StoreError::NotFound(_)
            | StoreError::Csv { .. }
            | StoreError::Schema(_)
            | StoreError::Join(_)
            | StoreError::Codec(_)
            | StoreError::Backend(_)
            | StoreError::SnapshotCorrupt(_)
            | StoreError::RetriesExhausted { .. } => false,
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NotFound(what) => write!(f, "not found: {what}"),
            StoreError::Csv { line, message } => {
                write!(f, "CSV error at line {line}: {message}")
            }
            StoreError::Schema(msg) => write!(f, "schema error: {msg}"),
            StoreError::Join(msg) => write!(f, "join error: {msg}"),
            StoreError::Codec(e) => write!(f, "codec error: {e}"),
            StoreError::Backend(msg) => write!(f, "backend error: {msg}"),
            StoreError::SnapshotCorrupt(msg) => write!(f, "snapshot corrupt: {msg}"),
            StoreError::Unavailable(msg) => write!(f, "backend unavailable: {msg}"),
            StoreError::RetriesExhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts: {last}")
            }
            StoreError::Overloaded { retry_after_ms } => {
                write!(
                    f,
                    "overloaded: admission shed this request, retry after ~{retry_after_ms} ms"
                )
            }
            StoreError::QuotaExceeded { tenant } => {
                write!(f, "quota exceeded for tenant {tenant:?}")
            }
            StoreError::DeadlineExceeded { phase } => {
                write!(f, "deadline exceeded in {phase} phase")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Codec(e) => Some(e),
            StoreError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

/// Result alias for store operations.
pub type StoreResult<T> = Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(StoreError::NotFound("db.t.c".into()).to_string(), "not found: db.t.c");
        assert!(StoreError::Csv { line: 3, message: "unterminated quote".into() }
            .to_string()
            .contains("line 3"));
        assert!(StoreError::Unavailable("link down".into()).to_string().contains("unavailable"));
        assert!(StoreError::Overloaded { retry_after_ms: 25 }.to_string().contains("25 ms"));
        assert!(StoreError::QuotaExceeded { tenant: "acme".into() }.to_string().contains("acme"));
        assert_eq!(
            StoreError::DeadlineExceeded { phase: Phase::BlockRead }.to_string(),
            "deadline exceeded in block-read phase"
        );
        let exhausted = StoreError::RetriesExhausted {
            attempts: 4,
            last: Box::new(StoreError::Unavailable("still down".into())),
        };
        let msg = exhausted.to_string();
        assert!(msg.contains("4 attempts") && msg.contains("still down"), "{msg}");
    }

    #[test]
    fn codec_error_converts() {
        let e: StoreError = CodecError::UnexpectedEof.into();
        assert!(matches!(e, StoreError::Codec(_)));
    }

    /// The complete retryability contract, one arm per variant. A new
    /// variant added without extending this table fails the count check
    /// below, so the classification can never silently drift.
    #[test]
    fn retryability_covers_every_variant() {
        let transient = [
            StoreError::Unavailable("timeout".into()),
            StoreError::Overloaded { retry_after_ms: 50 },
            StoreError::QuotaExceeded { tenant: "acme".into() },
        ];
        let fatal = [
            StoreError::NotFound("x".into()),
            StoreError::Csv { line: 1, message: "m".into() },
            StoreError::Schema("s".into()),
            StoreError::Join("j".into()),
            StoreError::Codec(CodecError::UnexpectedEof),
            StoreError::Backend("b".into()),
            StoreError::SnapshotCorrupt("checksum mismatch".into()),
            StoreError::RetriesExhausted {
                attempts: 3,
                last: Box::new(StoreError::Unavailable("u".into())),
            },
            StoreError::DeadlineExceeded { phase: Phase::Scan },
        ];
        for e in &transient {
            assert!(e.is_retryable(), "{e} must be retryable");
        }
        for e in &fatal {
            assert!(!e.is_retryable(), "{e} must be fatal");
        }
        // One exemplar per variant: count them via an exhaustive match so
        // adding a variant breaks compilation right here too.
        let variant_count = |e: &StoreError| match e {
            StoreError::NotFound(_)
            | StoreError::Csv { .. }
            | StoreError::Schema(_)
            | StoreError::Join(_)
            | StoreError::Codec(_)
            | StoreError::Backend(_)
            | StoreError::SnapshotCorrupt(_)
            | StoreError::Unavailable(_)
            | StoreError::RetriesExhausted { .. }
            | StoreError::Overloaded { .. }
            | StoreError::QuotaExceeded { .. }
            | StoreError::DeadlineExceeded { .. } => 1usize,
        };
        let total: usize = transient.iter().chain(fatal.iter()).map(variant_count).sum();
        assert_eq!(total, 12, "every StoreError variant has an exemplar in this table");
    }

    #[test]
    fn retries_exhausted_exposes_cause_via_source() {
        use std::error::Error;
        let e = StoreError::RetriesExhausted {
            attempts: 2,
            last: Box::new(StoreError::Unavailable("flaky".into())),
        };
        let src = e.source().expect("has a source");
        assert!(src.to_string().contains("flaky"));
    }
}
