//! Tables: named collections of equal-length columns.

use crate::column::Column;
use crate::dtype::DataType;
use crate::error::{StoreError, StoreResult};

/// A named table of equal-length columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    columns: Vec<Column>,
}

impl Table {
    /// Build a table, validating that all columns share one length and that
    /// column names are unique.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> StoreResult<Self> {
        let name = name.into();
        if let Some(first) = columns.first() {
            let len = first.len();
            for c in &columns {
                if c.len() != len {
                    return Err(StoreError::Schema(format!(
                        "column '{}' has {} rows, expected {}",
                        c.name(),
                        c.len(),
                        len
                    )));
                }
            }
        }
        for (i, a) in columns.iter().enumerate() {
            for b in &columns[i + 1..] {
                if a.name() == b.name() {
                    return Err(StoreError::Schema(format!(
                        "duplicate column name '{}'",
                        a.name()
                    )));
                }
            }
        }
        Ok(Self { name, columns })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of rows (0 for a table with no columns).
    pub fn num_rows(&self) -> usize {
        self.columns.first().map(|c| c.len()).unwrap_or(0)
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> StoreResult<&Column> {
        self.columns.iter().find(|c| c.name() == name).ok_or_else(|| {
            StoreError::NotFound(format!("column '{}' in table '{}'", name, self.name))
        })
    }

    /// Position of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name() == name)
    }

    /// `(name, dtype)` pairs in column order.
    pub fn schema(&self) -> Vec<(String, DataType)> {
        self.columns.iter().map(|c| (c.name().to_string(), c.dtype())).collect()
    }

    /// Select rows by index into a new table (indices may repeat).
    pub fn take(&self, idx: &[usize]) -> Table {
        Table {
            name: self.name.clone(),
            columns: self.columns.iter().map(|c| c.take(idx)).collect(),
        }
    }

    /// First `n` rows.
    pub fn head(&self, n: usize) -> Table {
        let n = n.min(self.num_rows());
        let idx: Vec<usize> = (0..n).collect();
        self.take(&idx)
    }

    /// Append a column; must match the row count.
    pub fn with_column(mut self, column: Column) -> StoreResult<Table> {
        if !self.columns.is_empty() && column.len() != self.num_rows() {
            return Err(StoreError::Schema(format!(
                "column '{}' has {} rows, table has {}",
                column.name(),
                column.len(),
                self.num_rows()
            )));
        }
        if self.column_index(column.name()).is_some() {
            return Err(StoreError::Schema(format!("duplicate column name '{}'", column.name())));
        }
        self.columns.push(column);
        Ok(self)
    }

    /// Approximate in-memory footprint (sum of columns).
    pub fn approx_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.approx_bytes()).sum()
    }

    /// Render the first `max_rows` rows as an aligned text grid — the
    /// "spreadsheet view" used by examples to show what a business user
    /// would see in Sigma Workbooks.
    pub fn render(&self, max_rows: usize) -> String {
        let rows = self.num_rows().min(max_rows);
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(rows + 1);
        cells.push(self.columns.iter().map(|c| c.name().to_string()).collect());
        for r in 0..rows {
            cells.push(self.columns.iter().map(|c| c.get(r).to_string()).collect());
        }
        let ncols = self.columns.len();
        let mut widths = vec![0usize; ncols];
        for row in &cells {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        for (ri, row) in cells.iter().enumerate() {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                for _ in cell.chars().count()..widths[i] {
                    out.push(' ');
                }
            }
            out.push('\n');
            if ri == 0 {
                for (i, w) in widths.iter().enumerate() {
                    if i > 0 {
                        out.push_str("  ");
                    }
                    out.push_str(&"-".repeat(*w));
                }
                out.push('\n');
            }
        }
        if self.num_rows() > rows {
            out.push_str(&format!("… {} more rows\n", self.num_rows() - rows));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueRef;

    fn t() -> Table {
        Table::new(
            "people",
            vec![
                Column::text("name", ["ada", "bob", "cyd"]),
                Column::ints("age", vec![36, 41, 29]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn basic_accessors() {
        let t = t();
        assert_eq!(t.name(), "people");
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.column("age").unwrap().get(1), ValueRef::Int(41));
        assert!(t.column("missing").is_err());
        assert_eq!(t.schema()[0].0, "name");
    }

    #[test]
    fn rejects_ragged_columns() {
        let err =
            Table::new("bad", vec![Column::ints("a", vec![1]), Column::ints("b", vec![1, 2])]);
        assert!(matches!(err, Err(StoreError::Schema(_))));
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = Table::new("bad", vec![Column::ints("a", vec![1]), Column::ints("a", vec![2])]);
        assert!(matches!(err, Err(StoreError::Schema(_))));
    }

    #[test]
    fn take_and_head() {
        let t = t();
        let h = t.head(2);
        assert_eq!(h.num_rows(), 2);
        let s = t.take(&[2, 0]);
        assert_eq!(s.column("name").unwrap().get(0), ValueRef::Text("cyd"));
    }

    #[test]
    fn with_column_validates() {
        let t = t();
        let ok = t.clone().with_column(Column::bools("ok", vec![true, false, true]));
        assert!(ok.is_ok());
        let bad_len = t.clone().with_column(Column::bools("ok", vec![true]));
        assert!(bad_len.is_err());
        let dup = t.with_column(Column::ints("age", vec![1, 2, 3]));
        assert!(dup.is_err());
    }

    #[test]
    fn render_contains_header_and_rows() {
        let r = t().render(2);
        assert!(r.contains("name"));
        assert!(r.contains("ada"));
        assert!(r.contains("… 1 more rows"));
    }

    #[test]
    fn empty_table() {
        let t = Table::new("empty", vec![]).unwrap();
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.approx_bytes(), 0);
    }
}
