//! The named-backend registry behind federated discovery.
//!
//! A federated WarpGate node holds many warehouses at once — a CDW
//! simulator, a CSV data lake, a remote WGRP endpoint — each attached
//! under a stable name. [`BackendRegistry`] is that map: attach names
//! intern to [`BackendId`]s (`wg_util::names`), and the registry stores
//! one [`BackendHandle`] per live id. Detaching removes the handle but
//! never the id — interner ids are append-only, so a re-attached name
//! maps back onto its old namespace and its previously indexed items stay
//! addressable.
//!
//! The registry is deliberately dumb: it knows nothing about sync epochs,
//! caches, or indexes. Those live in `warpgate_core`, keyed by the same
//! [`BackendId`]s this map hands out.

use parking_lot::RwLock;

use wg_util::FxHashMap;

use crate::backend::BackendHandle;
use crate::catalog::BackendId;
use crate::error::{StoreError, StoreResult};

/// A thread-safe map of named, attached warehouse backends.
#[derive(Default)]
pub struct BackendRegistry {
    backends: RwLock<FxHashMap<BackendId, BackendHandle>>,
}

impl BackendRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach `handle` under `name`, returning the namespace id. Replaces
    /// (and returns) any backend previously attached under the same name.
    pub fn attach(&self, name: &str, handle: BackendHandle) -> (BackendId, Option<BackendHandle>) {
        let id = BackendId::named(name);
        let previous = self.backends.write().insert(id, handle);
        (id, previous)
    }

    /// Detach the backend under `name`, returning its handle if one was
    /// attached. The name keeps its [`BackendId`] forever.
    pub fn detach(&self, name: &str) -> Option<BackendHandle> {
        let id = wg_util::names::lookup(name).map(BackendId::from_bits)?;
        self.backends.write().remove(&id)
    }

    /// The handle attached under `id`, if any.
    pub fn get(&self, id: BackendId) -> Option<BackendHandle> {
        self.backends.read().get(&id).cloned()
    }

    /// The handle attached under `id`, or a `NotFound` error naming the
    /// namespace — the resolution step every billed operation starts with.
    pub fn require(&self, id: BackendId) -> StoreResult<BackendHandle> {
        self.get(id)
            .ok_or_else(|| StoreError::NotFound(format!("backend '{}' is not attached", id.name())))
    }

    /// Ids of every attached backend, sorted (deterministic iteration
    /// order for sync schedules and reports).
    pub fn ids(&self) -> Vec<BackendId> {
        let mut ids: Vec<BackendId> = self.backends.read().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// `(id, handle)` for every attached backend, sorted by id. A snapshot:
    /// concurrent attach/detach after this call is not reflected.
    pub fn snapshot(&self) -> Vec<(BackendId, BackendHandle)> {
        let mut entries: Vec<(BackendId, BackendHandle)> =
            self.backends.read().iter().map(|(id, h)| (*id, h.clone())).collect();
        entries.sort_unstable_by_key(|(id, _)| *id);
        entries
    }

    /// Number of attached backends.
    pub fn len(&self) -> usize {
        self.backends.read().len()
    }

    /// Whether no backend is attached.
    pub fn is_empty(&self) -> bool {
        self.backends.read().is_empty()
    }
}

impl std::fmt::Debug for BackendRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<String> = self.ids().iter().map(|id| id.name()).collect();
        f.debug_struct("BackendRegistry").field("attached", &names).finish()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::catalog::Warehouse;
    use crate::cdw::{CdwConfig, CdwConnector};

    fn handle(name: &str) -> BackendHandle {
        Arc::new(CdwConnector::new(Warehouse::new(name), CdwConfig::free()))
    }

    #[test]
    fn attach_get_detach_round_trip() {
        let reg = BackendRegistry::new();
        assert!(reg.is_empty());
        let (id, prev) = reg.attach("registry-test-a", handle("a"));
        assert!(prev.is_none());
        assert_eq!(reg.len(), 1);
        assert!(reg.get(id).is_some());
        assert!(reg.require(id).is_ok());
        let detached = reg.detach("registry-test-a");
        assert!(detached.is_some());
        assert!(reg.get(id).is_none());
        let err = match reg.require(id) {
            Err(e) => e,
            Ok(_) => panic!("require after detach must fail"),
        };
        assert!(err.to_string().contains("registry-test-a"), "error names the namespace: {err}");
    }

    #[test]
    fn reattach_replaces_and_keeps_id() {
        let reg = BackendRegistry::new();
        let (id1, _) = reg.attach("registry-test-b", handle("first"));
        let (id2, prev) = reg.attach("registry-test-b", handle("second"));
        assert_eq!(id1, id2, "a name keeps its id across re-attach");
        assert_eq!(prev.unwrap().name(), "first");
        assert_eq!(reg.get(id1).unwrap().name(), "second");
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn detach_unknown_name_is_none_and_does_not_intern() {
        let reg = BackendRegistry::new();
        assert!(reg.detach("registry-test-never-attached-xyz").is_none());
        assert_eq!(wg_util::names::lookup("registry-test-never-attached-xyz"), None);
    }

    #[test]
    fn ids_and_snapshot_are_sorted() {
        let reg = BackendRegistry::new();
        let (ic, _) = reg.attach("registry-test-c", handle("c"));
        let (id, _) = reg.attach("registry-test-d", handle("d"));
        let mut expect = vec![ic, id];
        expect.sort_unstable();
        assert_eq!(reg.ids(), expect);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap.iter().map(|(id, _)| *id).collect::<Vec<_>>(), expect);
    }
}
