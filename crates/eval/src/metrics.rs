//! Ranking metrics (§4.2).
//!
//! The paper reports top-k precision and recall, macro-averaged over all
//! queries, at small k (2, 3, 5, 10) — recommendations beyond that would
//! "overwhelm users".

use wg_store::ColumnRef;

/// Precision and recall of one ranked result list at cutoff `k`.
pub fn precision_recall_at_k(results: &[ColumnRef], answers: &[ColumnRef], k: usize) -> (f64, f64) {
    if k == 0 || answers.is_empty() {
        return (0.0, 0.0);
    }
    let top = &results[..results.len().min(k)];
    let hits = top.iter().filter(|r| answers.contains(r)).count();
    // Precision divides by k (not by |returned|): a system returning fewer
    // than k results is not rewarded for abstaining — this matches how the
    // paper can show precision decreasing monotonically in k.
    (hits as f64 / k as f64, hits as f64 / answers.len() as f64)
}

/// Macro-averaged precision/recall at `k` over a query workload.
/// `results_of(q)` supplies the ranked candidates per query.
pub fn macro_average<'a>(
    queries: impl Iterator<Item = (&'a ColumnRef, &'a [ColumnRef], Vec<ColumnRef>)>,
    k: usize,
) -> (f64, f64) {
    let mut p_sum = 0.0;
    let mut r_sum = 0.0;
    let mut n = 0usize;
    for (_q, answers, results) in queries {
        let (p, r) = precision_recall_at_k(&results, answers, k);
        p_sum += p;
        r_sum += r;
        n += 1;
    }
    if n == 0 {
        (0.0, 0.0)
    } else {
        (p_sum / n as f64, r_sum / n as f64)
    }
}

/// Reciprocal rank of the first correct answer (extension metric used by
/// ablations; not in the paper's tables).
pub fn reciprocal_rank(results: &[ColumnRef], answers: &[ColumnRef]) -> f64 {
    for (i, r) in results.iter().enumerate() {
        if answers.contains(r) {
            return 1.0 / (i + 1) as f64;
        }
    }
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: &str) -> ColumnRef {
        ColumnRef::new("d", "t", n)
    }

    #[test]
    fn perfect_ranking() {
        let answers = vec![c("a"), c("b")];
        let results = vec![c("a"), c("b"), c("x")];
        let (p, r) = precision_recall_at_k(&results, &answers, 2);
        assert_eq!((p, r), (1.0, 1.0));
    }

    #[test]
    fn precision_divides_by_k() {
        let answers = vec![c("a")];
        let results = vec![c("a")];
        let (p, r) = precision_recall_at_k(&results, &answers, 10);
        assert!((p - 0.1).abs() < 1e-12);
        assert_eq!(r, 1.0);
    }

    #[test]
    fn miss_everything() {
        let answers = vec![c("a")];
        let results = vec![c("x"), c("y")];
        assert_eq!(precision_recall_at_k(&results, &answers, 2), (0.0, 0.0));
    }

    #[test]
    fn recall_grows_with_k() {
        let answers = vec![c("a"), c("b"), c("c")];
        let results = vec![c("a"), c("x"), c("b"), c("y"), c("c")];
        let (_, r2) = precision_recall_at_k(&results, &answers, 2);
        let (_, r5) = precision_recall_at_k(&results, &answers, 5);
        assert!(r5 > r2);
        assert_eq!(r5, 1.0);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(precision_recall_at_k(&[], &[c("a")], 3), (0.0, 0.0));
        assert_eq!(precision_recall_at_k(&[c("a")], &[], 3), (0.0, 0.0));
        assert_eq!(precision_recall_at_k(&[c("a")], &[c("a")], 0), (0.0, 0.0));
    }

    #[test]
    fn macro_average_is_mean() {
        let a1 = vec![c("a")];
        let a2 = vec![c("b")];
        let q1 = c("q1");
        let q2 = c("q2");
        let items: Vec<(&ColumnRef, &[ColumnRef], Vec<ColumnRef>)> = vec![
            (&q1, a1.as_slice(), vec![c("a")]), // P@1 = 1
            (&q2, a2.as_slice(), vec![c("z")]), // P@1 = 0
        ];
        let (p, r) = macro_average(items.into_iter(), 1);
        assert!((p - 0.5).abs() < 1e-12);
        assert!((r - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rr_positions() {
        let answers = vec![c("a")];
        assert_eq!(reciprocal_rank(&[c("a")], &answers), 1.0);
        assert_eq!(reciprocal_rank(&[c("x"), c("a")], &answers), 0.5);
        assert_eq!(reciprocal_rank(&[c("x")], &answers), 0.0);
    }
}
