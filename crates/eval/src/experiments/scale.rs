//! §5.1 fleet scale statistics and the sampling-cost argument.

use wg_corpora::{FleetSample, FleetSpec};
use wg_store::CdwConfig;

use crate::paper::PAPER_FLEET;
use crate::report;

/// Measured fleet statistics plus cost accounting.
pub struct ScaleResult {
    /// Median tables per warehouse.
    pub median_tables: u64,
    /// Mean tables per warehouse.
    pub mean_tables: f64,
    /// Median rows per table.
    pub median_rows: u64,
    /// Mean rows per table.
    pub mean_rows: f64,
    /// Dollars to actively sample 1,000 rows/column fleet-wide.
    pub sample_cost_usd: f64,
    /// Dollars for one full fleet scan.
    pub full_scan_cost_usd: f64,
}

/// Sample a fleet calibrated to the paper's §5.1 and price both strategies.
pub fn run(customers: usize, seed: u64) -> ScaleResult {
    let sample = FleetSample::draw(&FleetSpec::paper(customers, seed));
    let config = CdwConfig::default();
    ScaleResult {
        median_tables: sample.median_tables(),
        mean_tables: sample.mean_tables(),
        median_rows: sample.median_rows(),
        mean_rows: sample.mean_rows(),
        sample_cost_usd: sample.active_sampling_cost_usd(1_000, &config),
        full_scan_cost_usd: sample.full_scan_cost_usd(&config),
    }
}

/// Render measured-vs-paper plus the cost comparison.
pub fn render(r: &ScaleResult) -> String {
    let body = vec![
        vec![
            "tables/warehouse (median)".to_string(),
            r.median_tables.to_string(),
            format!("{:.0}", PAPER_FLEET.median_tables),
        ],
        vec![
            "tables/warehouse (mean)".to_string(),
            format!("{:.0}", r.mean_tables),
            format!("{:.0}", PAPER_FLEET.mean_tables),
        ],
        vec![
            "rows/table (median)".to_string(),
            r.median_rows.to_string(),
            format!("{:.0}", PAPER_FLEET.median_rows),
        ],
        vec![
            "rows/table (mean)".to_string(),
            format!("{:.2e}", r.mean_rows),
            format!("{:.2e}", PAPER_FLEET.mean_rows),
        ],
    ];
    format!(
        "{}{}\nActive sampling (1000 rows/column, fleet-wide): ${:.2}\nOne full fleet scan:                              ${:.2}\n",
        report::section("§5.1 customer data scale (sampled fleet vs paper)"),
        report::table(&["statistic", "measured", "paper"], &body),
        r.sample_cost_usd,
        r.full_scan_cost_usd,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_stats_and_costs() {
        let r = run(2_000, 7);
        assert!(r.mean_tables > r.median_tables as f64 * 5.0);
        assert!(r.mean_rows > r.median_rows as f64 * 100.0);
        assert!(r.full_scan_cost_usd > r.sample_cost_usd * 50.0);
    }
}
