//! §4.4 sample efficiency: effectiveness and latency across sample sizes
//! 10 / 100 / 1000 / full.
//!
//! For each sample size a fresh WarpGate index is built with the sampled
//! scan pushed into the CDW connector, then the full query workload runs at
//! the same sample size. Reported per size: P/R at k ∈ {2,3,5,10}, mean
//! lookup time and mean end-to-end response time — the paper's claims are
//! that effectiveness barely moves while both times collapse.

use wg_corpora::Corpus;
use wg_store::{BackendHandle, SampleSpec};

use crate::experiments::KS;
use crate::metrics::precision_recall_at_k;
use crate::report;
use crate::systems::{build_warpgate, System};

/// Results for one sample size.
#[derive(Debug, Clone)]
pub struct SampleRow {
    /// Sample label ("10", "100", "1000", "full").
    pub sample: String,
    /// `(k, precision, recall)` triplets.
    pub pr: Vec<(usize, f64, f64)>,
    /// Mean lookup seconds per query.
    pub lookup_secs: f64,
    /// Mean response seconds per query (incl. virtual load latency).
    pub response_secs: f64,
}

/// Sample sizes the paper sweeps.
pub fn sample_specs() -> Vec<(String, SampleSpec)> {
    vec![
        ("10".into(), SampleSpec::Reservoir { n: 10, seed: 0x5A17 }),
        ("100".into(), SampleSpec::Reservoir { n: 100, seed: 0x5A17 }),
        ("1000".into(), SampleSpec::Reservoir { n: 1_000, seed: 0x5A17 }),
        ("full".into(), SampleSpec::Full),
    ]
}

/// Run the sweep on one corpus.
pub fn run(corpus: &Corpus, backend: &BackendHandle) -> Vec<SampleRow> {
    let kmax = *KS.iter().max().expect("ks");
    let mut out = Vec::new();
    for (label, spec) in sample_specs() {
        let system = build_warpgate(backend, spec, None).expect("warpgate build");
        let mut lookup = 0.0;
        let mut response = 0.0;
        let mut rankings = Vec::with_capacity(corpus.queries.len());
        for q in &corpus.queries {
            let (hits, t) = system.query(backend.as_ref(), q, kmax).expect("query");
            lookup += t.lookup_secs;
            response += t.response_secs();
            rankings.push(hits);
        }
        let n = corpus.queries.len().max(1) as f64;
        let pr = KS
            .iter()
            .map(|&k| {
                let mut p_sum = 0.0;
                let mut r_sum = 0.0;
                for (q, hits) in corpus.queries.iter().zip(&rankings) {
                    let (p, r) = precision_recall_at_k(hits, corpus.truth.answers(q), k);
                    p_sum += p;
                    r_sum += r;
                }
                (k, p_sum / n, r_sum / n)
            })
            .collect();
        out.push(SampleRow {
            sample: label,
            pr,
            lookup_secs: lookup / n,
            response_secs: response / n,
        });
    }
    out
}

/// Render the sweep.
pub fn render(corpus: &str, rows: &[SampleRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![r.sample.clone()];
            for (_, p, rec) in &r.pr {
                cells.push(format!("{:.3}/{:.3}", p, rec));
            }
            cells.push(report::secs(r.lookup_secs));
            cells.push(report::secs(r.response_secs));
            cells
        })
        .collect();
    format!(
        "{}{}",
        report::section(&format!("§4.4 sample efficiency on {corpus} (P@k/R@k)")),
        report::table(
            &["sample", "k=2", "k=3", "k=5", "k=10", "lookup/query", "response/query"],
            &body
        )
    )
}

/// Check the paper's two §4.4 properties: effectiveness at the given
/// sample size stays within `tolerance` (absolute P/R difference at every
/// k) of full values, and the sampled response time is at most
/// `speedup_floor`× the full response time. Returns the first violation.
pub fn check_robustness(
    rows: &[SampleRow],
    sample: &str,
    tolerance: f64,
    speedup_floor: f64,
) -> Option<String> {
    let full = rows.iter().find(|r| r.sample == "full")?;
    let s = rows.iter().find(|r| r.sample == sample)?;
    for ((k, p_s, r_s), (_, p_f, r_f)) in s.pr.iter().zip(&full.pr) {
        if (p_s - p_f).abs() > tolerance {
            return Some(format!(
                "precision@{k} moved {:.3} -> {:.3} at sample {sample}",
                p_f, p_s
            ));
        }
        if (r_s - r_f).abs() > tolerance {
            return Some(format!("recall@{k} moved {:.3} -> {:.3} at sample {sample}", r_f, r_s));
        }
    }
    if s.response_secs * speedup_floor > full.response_secs {
        return Some(format!(
            "response did not speed up {speedup_floor}x: full {} vs sampled {}",
            report::secs(full.response_secs),
            report::secs(s.response_secs)
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::connect;
    use wg_corpora::TestbedSpec;

    #[test]
    fn sampling_is_robust_and_fast_on_xs() {
        let corpus = wg_corpora::build_testbed(&TestbedSpec::xs(0.25));
        let connector = connect(corpus.warehouse.clone());
        let rows = run(&corpus, &connector);
        assert_eq!(rows.len(), 4);
        // 1000-value samples on XS columns are full columns: identical
        // effectiveness, response equal up to noise (0.9 slack).
        assert_eq!(check_robustness(&rows, "1000", 0.02, 0.9), None, "{rows:?}");
        // 100-value samples stay close in effectiveness.
        assert_eq!(check_robustness(&rows, "100", 0.12, 0.9), None, "{rows:?}");
        // The real speedup shows where sampling actually reduces bytes:
        // sample 10 must respond well under the full-scan time.
        let full = rows.iter().find(|r| r.sample == "full").unwrap();
        let ten = rows.iter().find(|r| r.sample == "10").unwrap();
        assert!(
            ten.response_secs < full.response_secs * 0.6,
            "sample 10 {} vs full {}",
            ten.response_secs,
            full.response_secs
        );
    }
}
