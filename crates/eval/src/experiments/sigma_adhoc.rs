//! §4.3.3 / Figure 3: the ad-hoc discovery walkthrough on the Sigma Sample
//! Database — Joey's sales-campaign scenario executed end to end.

use warpgate_core::{WarpGate, WarpGateConfig};
use wg_store::{BackendHandle, ColumnRef, KeyNorm, SampleSpec, Table};

use crate::report;

/// The walkthrough's artifacts.
pub struct AdhocResult {
    /// Top-k recommendations for `SALESFORCE.ACCOUNT.Name`.
    pub recommendations: Vec<(ColumnRef, f32)>,
    /// The ACCOUNT table augmented with `Industry Group` via lookup join.
    pub augmented: Table,
    /// How many base rows obtained a sector (coverage of the enrichment).
    pub enriched_rows: usize,
}

/// Run the walkthrough: index the corpus, query ACCOUNT.Name, then execute
/// "Add column via lookup" against the INDUSTRIES recommendation.
pub fn run(backend: &BackendHandle) -> AdhocResult {
    let wg = WarpGate::with_backend(
        WarpGateConfig {
            sample: SampleSpec::DistinctReservoir { n: 1_000, seed: 0x5A17 },
            ..WarpGateConfig::default()
        },
        backend.clone(),
    );
    wg.index_warehouse().expect("indexing");

    let query = ColumnRef::new("SALESFORCE", "ACCOUNT", "Name");
    let discovery = wg.discover(&query, 3).expect("discover");
    let recommendations: Vec<(ColumnRef, f32)> =
        discovery.candidates.iter().map(|c| (c.reference.clone(), c.score)).collect();

    // Pick the INDUSTRIES candidate like Joey does (falling back to the top
    // recommendation if ranking shuffled).
    let candidate = recommendations
        .iter()
        .map(|(r, _)| r)
        .find(|r| r.table == "INDUSTRIES")
        .unwrap_or(&recommendations[0].0)
        .clone();

    let base = backend.scan_table("SALESFORCE", "ACCOUNT", SampleSpec::Full).expect("scan base");
    let augmented = wg
        .augment_via_lookup(&base, "Name", &candidate, &["Industry Group"], KeyNorm::AlphaNum)
        .expect("lookup join");
    let sector = augmented.column("Industry Group").expect("added column");
    let enriched_rows = (0..sector.len()).filter(|&i| !sector.get(i).is_null()).count();
    AdhocResult { recommendations, augmented, enriched_rows }
}

/// Render the walkthrough the way Fig. 3's window displays it.
pub fn render(result: &AdhocResult) -> String {
    let mut out = report::section("§4.3.3 ad-hoc discovery: SALESFORCE.ACCOUNT.Name (k=3)");
    let rows: Vec<Vec<String>> = result
        .recommendations
        .iter()
        .map(|(r, s)| {
            vec![r.column.clone(), r.table.clone(), r.database.clone(), format!("{s:.3}")]
        })
        .collect();
    out.push_str(&report::table(&["column", "table", "database", "similarity"], &rows));
    out.push_str(&format!(
        "\nAugmented ACCOUNT with 'Industry Group' via lookup: {}/{} rows enriched\n\n",
        result.enriched_rows,
        result.augmented.num_rows()
    ));
    out.push_str(&result.augmented.head(5).render(5));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::connect_free;

    #[test]
    fn walkthrough_reproduces_figure3() {
        let corpus = wg_corpora::build_sigma(0.02, 0x51);
        let connector = connect_free(corpus.warehouse.clone());
        let result = run(&connector);
        // The paper's two headline recommendations must appear in the top-3:
        // LEAD.Company (same database) and INDUSTRIES."Company Name"
        // (cross-database format variant).
        let tables: Vec<&str> =
            result.recommendations.iter().map(|(r, _)| r.table.as_str()).collect();
        assert!(tables.contains(&"LEAD"), "LEAD.Company missed: {tables:?}");
        assert!(tables.contains(&"INDUSTRIES"), "INDUSTRIES missed: {tables:?}");
        // The enrichment actually lands sectors on most accounts.
        assert!(
            result.enriched_rows * 10 >= result.augmented.num_rows() * 8,
            "only {}/{} rows enriched",
            result.enriched_rows,
            result.augmented.num_rows()
        );
        assert!(result.augmented.column("Industry Group").is_ok());
    }
}
