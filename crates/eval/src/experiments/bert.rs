//! §4.4 BERT comparison: swap the embedding model for the transformer and
//! measure (a) effectiveness across sample sizes, (b) inference cost.

use std::sync::Arc;

use wg_corpora::Corpus;
use wg_embed::{MiniBertConfig, MiniBertModel};
use wg_store::{BackendHandle, SampleSpec};

use crate::experiments::KS;
use crate::metrics::precision_recall_at_k;
use crate::report;
use crate::systems::{build_warpgate, System};

/// One model × sample-size measurement.
#[derive(Debug, Clone)]
pub struct BertRow {
    /// Model name.
    pub model: String,
    /// Sample label.
    pub sample: String,
    /// `(k, precision, recall)` triplets.
    pub pr: Vec<(usize, f64, f64)>,
    /// Mean embed (inference) seconds per query.
    pub embed_secs: f64,
    /// Mean response seconds per query.
    pub response_secs: f64,
}

/// Sample sizes for the comparison (full is included to exhibit the paper's
/// "10x slower without sampling").
fn specs() -> Vec<(String, SampleSpec)> {
    vec![
        ("100".into(), SampleSpec::Reservoir { n: 100, seed: 0x5A17 }),
        ("1000".into(), SampleSpec::Reservoir { n: 1_000, seed: 0x5A17 }),
        ("full".into(), SampleSpec::Full),
    ]
}

/// Run both models over the corpus.
pub fn run(corpus: &Corpus, backend: &BackendHandle) -> Vec<BertRow> {
    let kmax = *KS.iter().max().expect("ks");
    let mut out = Vec::new();
    for model_name in ["web-table", "mini-bert"] {
        for (label, spec) in specs() {
            let system = match model_name {
                "web-table" => build_warpgate(backend, spec, None),
                _ => build_warpgate(
                    backend,
                    spec,
                    Some(Arc::new(MiniBertModel::new(MiniBertConfig::default()))),
                ),
            }
            .expect("build");
            let mut embed = 0.0;
            let mut response = 0.0;
            let mut rankings = Vec::with_capacity(corpus.queries.len());
            for q in &corpus.queries {
                let (hits, t) = system.query(backend.as_ref(), q, kmax).expect("query");
                embed += t.profile_secs;
                response += t.response_secs();
                rankings.push(hits);
            }
            let n = corpus.queries.len().max(1) as f64;
            let pr = KS
                .iter()
                .map(|&k| {
                    let mut p_sum = 0.0;
                    let mut r_sum = 0.0;
                    for (q, hits) in corpus.queries.iter().zip(&rankings) {
                        let (p, r) = precision_recall_at_k(hits, corpus.truth.answers(q), k);
                        p_sum += p;
                        r_sum += r;
                    }
                    (k, p_sum / n, r_sum / n)
                })
                .collect();
            out.push(BertRow {
                model: model_name.to_string(),
                sample: label,
                pr,
                embed_secs: embed / n,
                response_secs: response / n,
            });
        }
    }
    out
}

/// Render the comparison.
pub fn render(corpus: &str, rows: &[BertRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![r.model.clone(), r.sample.clone()];
            for (_, p, rec) in &r.pr {
                cells.push(format!("{:.3}/{:.3}", p, rec));
            }
            cells.push(report::secs(r.embed_secs));
            cells.push(report::secs(r.response_secs));
            cells
        })
        .collect();
    format!(
        "{}{}",
        report::section(&format!("§4.4 BERT comparison on {corpus} (P@k/R@k)")),
        report::table(
            &["model", "sample", "k=2", "k=3", "k=5", "k=10", "embed/query", "response/query"],
            &body
        )
    )
}

/// Check the paper's claims: (1) mini-bert effectiveness within `tolerance`
/// of web-table at every (sample, k); (2) full-scan mini-bert inference at
/// least `slowdown_floor`× slower. Returns the first violation.
pub fn check_claims(rows: &[BertRow], tolerance: f64, slowdown_floor: f64) -> Option<String> {
    for (label, _) in specs() {
        let wt = rows.iter().find(|r| r.model == "web-table" && r.sample == label)?;
        let mb = rows.iter().find(|r| r.model == "mini-bert" && r.sample == label)?;
        for ((k, p_w, r_w), (_, p_b, r_b)) in wt.pr.iter().zip(&mb.pr) {
            if (p_w - p_b).abs() > tolerance || (r_w - r_b).abs() > tolerance {
                return Some(format!(
                    "effectiveness diverges at sample {label}, k={k}: wt {:.3}/{:.3} vs bert {:.3}/{:.3}",
                    p_w, r_w, p_b, r_b
                ));
            }
        }
    }
    let wt_full = rows.iter().find(|r| r.model == "web-table" && r.sample == "full")?;
    let mb_full = rows.iter().find(|r| r.model == "mini-bert" && r.sample == "full")?;
    if mb_full.embed_secs < wt_full.embed_secs * slowdown_floor {
        return Some(format!(
            "mini-bert not {slowdown_floor}x slower: {} vs {}",
            report::secs(mb_full.embed_secs),
            report::secs(wt_full.embed_secs)
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::connect_free;
    use wg_corpora::TestbedSpec;

    #[test]
    #[ignore = "minutes-long in debug; run with --ignored or --release"]
    fn bert_on_par_but_slower_on_xs() {
        let corpus = wg_corpora::build_testbed(&TestbedSpec::xs(0.1));
        let connector = connect_free(corpus.warehouse.clone());
        let rows = run(&corpus, &connector);
        assert_eq!(rows.len(), 6);
        assert_eq!(check_claims(&rows, 0.2, 3.0), None, "{rows:?}");
    }
}
