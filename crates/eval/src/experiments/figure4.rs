//! Figure 4: top-k precision and recall of Aurum / D3L / WarpGate on
//! testbedS (a), testbedM (b) and Spider (c).

use wg_corpora::Corpus;
use wg_store::{BackendHandle, SampleSpec};

use crate::experiments::KS;
use crate::metrics::precision_recall_at_k;
use crate::report;
use crate::systems::{build_systems, System};

/// One point of a figure panel: a system's P/R at one k.
#[derive(Debug, Clone)]
pub struct Fig4Point {
    /// System name.
    pub system: String,
    /// Cutoff.
    pub k: usize,
    /// Macro-averaged precision@k.
    pub precision: f64,
    /// Macro-averaged recall@k.
    pub recall: f64,
}

/// Run one panel: evaluate all three systems over the corpus queries.
pub fn run(corpus: &Corpus, backend: &BackendHandle) -> Vec<Fig4Point> {
    let systems = build_systems(backend, SampleSpec::DistinctReservoir { n: 1_000, seed: 0x5A17 })
        .expect("system construction");
    run_with_systems(corpus, backend, &systems)
}

/// Evaluate pre-built systems (shared with Table 2, which reuses them).
pub fn run_with_systems(
    corpus: &Corpus,
    backend: &BackendHandle,
    systems: &[Box<dyn System>],
) -> Vec<Fig4Point> {
    let kmax = *KS.iter().max().expect("non-empty ks");
    let mut out = Vec::new();
    for system in systems {
        // One ranked list per query at the largest k; prefixes give the
        // smaller cutoffs.
        let rankings: Vec<(usize, Vec<wg_store::ColumnRef>)> = corpus
            .queries
            .iter()
            .enumerate()
            .map(|(qi, q)| {
                let (hits, _) = system
                    .query(backend.as_ref(), q, kmax)
                    .unwrap_or_else(|e| panic!("{} failed on {q}: {e}", system.name()));
                (qi, hits)
            })
            .collect();
        for &k in KS {
            let mut p_sum = 0.0;
            let mut r_sum = 0.0;
            for (qi, hits) in &rankings {
                let answers = corpus.truth.answers(&corpus.queries[*qi]);
                let (p, r) = precision_recall_at_k(hits, answers, k);
                p_sum += p;
                r_sum += r;
            }
            let n = rankings.len().max(1) as f64;
            out.push(Fig4Point {
                system: system.name().to_string(),
                k,
                precision: p_sum / n,
                recall: r_sum / n,
            });
        }
    }
    out
}

/// Render one panel as the two series the figure plots.
pub fn render(panel: &str, points: &[Fig4Point]) -> String {
    let mut rows = Vec::new();
    for p in points {
        rows.push(vec![
            p.system.clone(),
            p.k.to_string(),
            report::f(p.precision, 3),
            report::f(p.recall, 3),
        ]);
    }
    format!(
        "{}{}",
        report::section(&format!("Figure 4({panel}): top-k precision / recall")),
        report::table(&["system", "k", "precision", "recall"], &rows)
    )
}

/// The headline property of Figure 4(a)/(b): WarpGate dominates both
/// baselines. Returns the first violation found, if any (used by tests and
/// the reproduce binary's self-check).
pub fn check_warpgate_dominates(points: &[Fig4Point], margin: f64) -> Option<String> {
    for &k in KS {
        let get = |name: &str| {
            points.iter().find(|p| p.system == name && p.k == k).expect("complete grid")
        };
        let wg = get("WarpGate");
        for baseline in ["Aurum", "D3L"] {
            let b = get(baseline);
            if wg.recall + margin < b.recall {
                return Some(format!(
                    "recall@{k}: WarpGate {:.3} < {} {:.3}",
                    wg.recall, baseline, b.recall
                ));
            }
        }
    }
    None
}

/// The Figure 4(c) property is weaker (the paper: WarpGate "outperforms
/// the syntactic-only approach by a large margin" and "compares favorably"
/// against D3L): WarpGate's recall must clearly beat Aurum's at every k and
/// stay within `d3l_slack` of D3L's. Returns the first violation.
pub fn check_spider(points: &[Fig4Point], margin: f64, d3l_slack: f64) -> Option<String> {
    for &k in KS {
        let get = |name: &str| {
            points.iter().find(|p| p.system == name && p.k == k).expect("complete grid")
        };
        let wg = get("WarpGate");
        let aurum = get("Aurum");
        let d3l = get("D3L");
        if wg.recall < aurum.recall + margin {
            return Some(format!(
                "recall@{k}: WarpGate {:.3} does not beat Aurum {:.3} by a large margin",
                wg.recall, aurum.recall
            ));
        }
        if wg.recall + d3l_slack < d3l.recall {
            return Some(format!(
                "recall@{k}: WarpGate {:.3} not comparable to D3L {:.3}",
                wg.recall, d3l.recall
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::connect_free;
    use wg_corpora::TestbedSpec;

    #[test]
    fn panel_on_xs_has_expected_shape() {
        let corpus = wg_corpora::build_testbed(&TestbedSpec::xs(0.05));
        let connector = connect_free(corpus.warehouse.clone());
        let points = run(&corpus, &connector);
        assert_eq!(points.len(), 3 * KS.len());
        // Recall must be non-decreasing in k for every system.
        for system in ["Aurum", "D3L", "WarpGate"] {
            let series: Vec<f64> = KS
                .iter()
                .map(|&k| points.iter().find(|p| p.system == system && p.k == k).unwrap().recall)
                .collect();
            for w in series.windows(2) {
                assert!(w[1] >= w[0] - 1e-9, "{system} recall decreased: {series:?}");
            }
        }
        // WarpGate should not be dominated (XS is the smallest corpus, so
        // allow a small statistical wobble; the reproduce binary checks the
        // full S/M panels at a tight margin).
        assert_eq!(check_warpgate_dominates(&points, 0.05), None);
        // And should find something.
        let wg10 = points.iter().find(|p| p.system == "WarpGate" && p.k == 10).unwrap();
        assert!(wg10.recall > 0.3, "WarpGate recall@10 {:.3}", wg10.recall);
    }
}
