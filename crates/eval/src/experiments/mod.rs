//! One module per table/figure of the paper (see DESIGN.md §4 for the
//! experiment index).

pub mod bert;
pub mod figure4;
pub mod samples;
pub mod scale;
pub mod sigma_adhoc;
pub mod table1;
pub mod table2;

use std::sync::Arc;

use wg_store::{BackendHandle, CdwConfig, CdwConnector, RetryBackend};

/// The k values the paper sweeps in Figure 4.
pub const KS: &[usize] = &[2, 3, 5, 10];

/// Wrap a corpus warehouse in the standard middleware stack:
/// `RetryBackend(CdwConnector)` with the default (priced,
/// virtually-latent) cost model used by all timing experiments. The
/// simulated CDW never fails, so the retry layer is pure composition
/// proof here — zero retries, zero extra cost — but every experiment now
/// exercises the same stack a resilient deployment runs.
pub fn connect(warehouse: wg_store::Warehouse) -> BackendHandle {
    let inner: BackendHandle = Arc::new(CdwConnector::new(warehouse, CdwConfig::default()));
    Arc::new(RetryBackend::with_defaults(inner))
}

/// Same stack over a free CDW (effectiveness-only experiments where
/// virtual latency would just add noise to no benefit).
pub fn connect_free(warehouse: wg_store::Warehouse) -> BackendHandle {
    let inner: BackendHandle = Arc::new(CdwConnector::new(warehouse, CdwConfig::free()));
    Arc::new(RetryBackend::with_defaults(inner))
}
