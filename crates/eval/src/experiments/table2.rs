//! Table 2: end-to-end query response time (seconds/query at k = 10), with
//! WarpGate's index-lookup time broken out.
//!
//! All systems run in their full-scan configuration (the paper's setting
//! for this table: sampling is studied separately in §4.4). The response
//! time includes the simulated CDW's virtual network latency, which is
//! what restores the "loading dominates" structure on scaled-down corpora.

use wg_corpora::Corpus;
use wg_store::{BackendHandle, SampleSpec};

use crate::report;
use crate::systems::{build_systems, SysTiming, System};

/// Mean per-query timing for one system on one corpus.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Corpus label.
    pub corpus: String,
    /// System name.
    pub system: String,
    /// Mean end-to-end response seconds per query.
    pub response_secs: f64,
    /// Mean index-lookup seconds per query.
    pub lookup_secs: f64,
    /// Mean load seconds (real + virtual) per query.
    pub load_secs: f64,
    /// Mean profile/embed seconds per query.
    pub profile_secs: f64,
}

/// Run the timing workload: every query at k = 10 against every system.
pub fn run(corpus: &Corpus, backend: &BackendHandle) -> Vec<Table2Row> {
    let systems = build_systems(backend, SampleSpec::Full).expect("system construction");
    run_with_systems(corpus, backend, &systems)
}

/// Timing over pre-built systems.
pub fn run_with_systems(
    corpus: &Corpus,
    backend: &BackendHandle,
    systems: &[Box<dyn System>],
) -> Vec<Table2Row> {
    let mut out = Vec::new();
    for system in systems {
        let mut acc = SysTiming::default();
        let mut n = 0usize;
        for q in &corpus.queries {
            let (_, t) = system
                .query(backend.as_ref(), q, 10)
                .unwrap_or_else(|e| panic!("{} failed on {q}: {e}", system.name()));
            acc.load_secs += t.load_secs + t.virtual_load_secs;
            acc.profile_secs += t.profile_secs;
            acc.lookup_secs += t.lookup_secs;
            n += 1;
        }
        let n = n.max(1) as f64;
        out.push(Table2Row {
            corpus: corpus.name.clone(),
            system: system.name().to_string(),
            response_secs: (acc.load_secs + acc.profile_secs + acc.lookup_secs) / n,
            lookup_secs: acc.lookup_secs / n,
            load_secs: acc.load_secs / n,
            profile_secs: acc.profile_secs / n,
        });
    }
    out
}

/// Render measured rows plus the decomposition the paper discusses.
pub fn render(rows: &[Table2Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let frac =
                if r.response_secs > 0.0 { r.lookup_secs / r.response_secs * 100.0 } else { 0.0 };
            vec![
                r.corpus.clone(),
                r.system.clone(),
                report::secs(r.response_secs),
                report::secs(r.lookup_secs),
                format!("{frac:.0}%"),
                report::secs(r.load_secs),
                report::secs(r.profile_secs),
            ]
        })
        .collect();
    format!(
        "{}{}",
        report::section("Table 2: end-to-end query response time (k=10, full scans)"),
        report::table(
            &[
                "corpus",
                "system",
                "response/query",
                "lookup/query",
                "lookup share",
                "load/query",
                "profile/query"
            ],
            &body
        )
    )
}

/// The orderings Table 2 exhibits: Aurum ≪ WarpGate < D3L, and WarpGate's
/// lookup is a minority share of its response. Returns the first violation.
pub fn check_ordering(rows: &[Table2Row]) -> Option<String> {
    let get = |name: &str| rows.iter().find(|r| r.system == name).expect("all systems present");
    let aurum = get("Aurum");
    let d3l = get("D3L");
    let wg = get("WarpGate");
    if aurum.response_secs >= wg.response_secs {
        return Some(format!(
            "Aurum ({}) not faster than WarpGate ({})",
            report::secs(aurum.response_secs),
            report::secs(wg.response_secs)
        ));
    }
    if wg.response_secs >= d3l.response_secs {
        return Some(format!(
            "WarpGate ({}) not faster than D3L ({})",
            report::secs(wg.response_secs),
            report::secs(d3l.response_secs)
        ));
    }
    if wg.lookup_secs > wg.response_secs * 0.30 {
        return Some(format!(
            "WarpGate lookup share too high: {} of {}",
            report::secs(wg.lookup_secs),
            report::secs(wg.response_secs)
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::connect;
    use wg_corpora::TestbedSpec;

    #[test]
    fn ordering_matches_paper_on_xs() {
        let corpus = wg_corpora::build_testbed(&TestbedSpec::xs(0.1));
        let connector = connect(corpus.warehouse.clone());
        let rows = run(&corpus, &connector);
        assert_eq!(rows.len(), 3);
        assert_eq!(check_ordering(&rows), None, "rows: {rows:?}");
    }
}
