//! Table 1: dataset statistics of the generated corpora, side by side with
//! the paper's numbers.

use wg_corpora::{build_sigma, build_spider, build_testbed, Corpus, TestbedSpec};

use crate::paper::PAPER_TABLE1;
use crate::report;
use crate::scale_for;

/// Measured statistics for one corpus.
pub struct Table1Row {
    /// Corpus label.
    pub corpus: String,
    /// Generated table count.
    pub tables: usize,
    /// Generated column count.
    pub columns: usize,
    /// Generated average rows (at the configured scale).
    pub avg_rows: f64,
    /// Row scale the corpus was generated at.
    pub row_scale: f64,
    /// Query count.
    pub queries: usize,
    /// Mean answers per query.
    pub avg_answers: f64,
}

/// Build every corpus and collect its statistics.
pub fn run() -> Vec<Table1Row> {
    corpora().into_iter().map(|(c, scale)| stats_of(&c, scale)).collect()
}

/// All six corpora at their evaluation scales.
pub fn corpora() -> Vec<(Corpus, f64)> {
    let mut out = Vec::new();
    for spec in [
        TestbedSpec::xs(scale_for("testbedXS")),
        TestbedSpec::s(scale_for("testbedS")),
        TestbedSpec::m(scale_for("testbedM")),
        TestbedSpec::l(scale_for("testbedL")),
    ] {
        out.push((build_testbed(&spec), spec.row_scale));
    }
    out.push((build_spider(scale_for("spider"), 0x5919), scale_for("spider")));
    out.push((build_sigma(scale_for("sigma"), 0x51), scale_for("sigma")));
    out
}

fn stats_of(c: &Corpus, row_scale: f64) -> Table1Row {
    let (tables, columns, avg_rows, queries, avg_answers) = c.stats();
    Table1Row { corpus: c.name.clone(), tables, columns, avg_rows, row_scale, queries, avg_answers }
}

/// Render measured-vs-paper.
pub fn render(rows: &[Table1Row]) -> String {
    let mut body = Vec::new();
    for r in rows {
        let paper = PAPER_TABLE1.iter().find(|p| p.corpus == r.corpus);
        body.push(vec![
            r.corpus.clone(),
            format!("{} / {}", r.tables, paper.map(|p| p.tables.to_string()).unwrap_or_default()),
            format!("{} / {}", r.columns, paper.map(|p| p.columns.to_string()).unwrap_or_default()),
            format!(
                "{:.0} / {:.0}×{}",
                r.avg_rows,
                paper.map(|p| p.avg_rows).unwrap_or(0.0),
                r.row_scale
            ),
            format!(
                "{} / {}",
                r.queries,
                paper
                    .and_then(|p| p.queries)
                    .map(|q| q.to_string())
                    .unwrap_or_else(|| "TBD".into())
            ),
            format!(
                "{:.1} / {}",
                r.avg_answers,
                paper
                    .and_then(|p| p.avg_answers)
                    .map(|a| format!("{a:.1}"))
                    .unwrap_or_else(|| "N/A".into())
            ),
        ]);
    }
    report::table(
        &[
            "corpus",
            "tables (ours/paper)",
            "columns",
            "avg rows (ours/paper×scale)",
            "queries",
            "avg answers",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xs_stats_match_spec() {
        let c = wg_corpora::build_testbed(&TestbedSpec::xs(0.05));
        let row = stats_of(&c, 0.05);
        assert_eq!(row.tables, 28);
        assert_eq!(row.columns, 257);
        assert!(row.queries > 0);
    }

    #[test]
    fn render_includes_paper_numbers() {
        let c = wg_corpora::build_testbed(&TestbedSpec::xs(0.05));
        let txt = render(&[stats_of(&c, 0.05)]);
        assert!(txt.contains("testbedXS"));
        assert!(txt.contains("/ 257"));
    }
}
