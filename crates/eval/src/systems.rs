//! Uniform adapter over the three discovery systems.
//!
//! Each system keeps its own API (they *are* architecturally different:
//! Aurum answers from a prebuilt graph, the other two run a load→profile→
//! lookup pipeline per query); this module narrows them to "ranked refs
//! plus a timing decomposition" for the experiment runners.

use std::sync::Arc;

use warpgate_core::{WarpGate, WarpGateConfig};
use wg_baselines::{Aurum, AurumConfig, D3l, D3lConfig};
use wg_store::{BackendHandle, ColumnRef, SampleSpec, StoreResult, WarehouseBackend};
use wg_util::timing::Stopwatch;

/// Timing decomposition common to all systems. Components a system does
/// not have (Aurum never loads at query time) stay zero.
#[derive(Debug, Clone, Copy, Default)]
pub struct SysTiming {
    /// Real seconds loading the query column.
    pub load_secs: f64,
    /// Real seconds profiling / embedding the query column.
    pub profile_secs: f64,
    /// Real seconds in index/graph lookup.
    pub lookup_secs: f64,
    /// Virtual CDW latency charged for the load.
    pub virtual_load_secs: f64,
}

impl SysTiming {
    /// End-to-end query response time (the paper's Table 2 metric).
    pub fn response_secs(&self) -> f64 {
        self.load_secs + self.profile_secs + self.lookup_secs + self.virtual_load_secs
    }
}

/// A discovery system under evaluation. Queries go through the shared
/// [`WarehouseBackend`] the systems were built over (WarpGate holds its
/// own attached handle to the same backend).
pub trait System: Send + Sync {
    /// Display name ("Aurum", "D3L", "WarpGate").
    fn name(&self) -> &str;

    /// Ranked candidates for a query column, with timing.
    fn query(
        &self,
        backend: &dyn WarehouseBackend,
        q: &ColumnRef,
        k: usize,
    ) -> StoreResult<(Vec<ColumnRef>, SysTiming)>;
}

/// Aurum behind the [`System`] interface.
pub struct AurumSystem(pub Aurum);

impl System for AurumSystem {
    fn name(&self) -> &str {
        "Aurum"
    }

    fn query(
        &self,
        _backend: &dyn WarehouseBackend,
        q: &ColumnRef,
        k: usize,
    ) -> StoreResult<(Vec<ColumnRef>, SysTiming)> {
        let sw = Stopwatch::start();
        let hits = self.0.neighbors(q, k)?;
        let timing = SysTiming { lookup_secs: sw.elapsed_secs(), ..Default::default() };
        Ok((hits.into_iter().map(|(r, _)| r).collect(), timing))
    }
}

/// D3L behind the [`System`] interface.
pub struct D3lSystem(pub D3l);

impl System for D3lSystem {
    fn name(&self) -> &str {
        "D3L"
    }

    fn query(
        &self,
        backend: &dyn WarehouseBackend,
        q: &ColumnRef,
        k: usize,
    ) -> StoreResult<(Vec<ColumnRef>, SysTiming)> {
        let (hits, t) = self.0.query(backend, q, k)?;
        let timing = SysTiming {
            load_secs: t.load_secs,
            profile_secs: t.profile_secs,
            lookup_secs: t.lookup_secs,
            virtual_load_secs: t.virtual_load_secs,
        };
        Ok((hits.into_iter().map(|h| h.reference).collect(), timing))
    }
}

/// WarpGate behind the [`System`] interface. WarpGate queries through its
/// *attached* backend (the one `build_systems` handed it), so the
/// `backend` parameter is unused here — pass the same handle the system
/// was built over.
pub struct WarpGateSystem(pub WarpGate);

impl System for WarpGateSystem {
    fn name(&self) -> &str {
        "WarpGate"
    }

    fn query(
        &self,
        _backend: &dyn WarehouseBackend,
        q: &ColumnRef,
        k: usize,
    ) -> StoreResult<(Vec<ColumnRef>, SysTiming)> {
        let d = self.0.discover(q, k)?;
        let timing = SysTiming {
            load_secs: d.timing.load_secs,
            profile_secs: d.timing.embed_secs,
            lookup_secs: d.timing.lookup_secs,
            virtual_load_secs: d.timing.virtual_load_secs,
        };
        Ok((d.candidates.into_iter().map(|c| c.reference).collect(), timing))
    }
}

/// Build all three systems over one connected warehouse. `query_sample`
/// configures WarpGate's scan sampling (the baselines follow their
/// published full-pass designs).
///
/// WarpGate's embedding cache is disabled here: the paper's timing
/// artifacts (Table 2, §4.4) measure *cold* queries whose cost is
/// dominated by the CDW scan and embedding inference, and the evaluation
/// harness replays the same queries repeatedly. A warm cache would
/// silently measure a different system.
pub fn build_systems(
    backend: &BackendHandle,
    query_sample: SampleSpec,
) -> StoreResult<Vec<Box<dyn System>>> {
    let aurum = Aurum::build(backend.as_ref(), AurumConfig::default())?;
    let d3l = D3l::build(backend.as_ref(), D3lConfig::default())?;
    let warpgate = WarpGate::with_backend(
        WarpGateConfig { sample: query_sample, cache_capacity: 0, ..WarpGateConfig::default() },
        backend.clone(),
    );
    warpgate.index_warehouse()?;
    Ok(vec![
        Box::new(AurumSystem(aurum)),
        Box::new(D3lSystem(d3l)),
        Box::new(WarpGateSystem(warpgate)),
    ])
}

/// Build just WarpGate with a given sample spec and embedding model choice.
/// Cache disabled for the same cold-query reason as [`build_systems`].
pub fn build_warpgate(
    backend: &BackendHandle,
    sample: SampleSpec,
    model: Option<Arc<dyn wg_embed::EmbeddingModel>>,
) -> StoreResult<WarpGateSystem> {
    let config = WarpGateConfig { sample, cache_capacity: 0, ..WarpGateConfig::default() };
    let wg = match model {
        Some(m) => WarpGate::with_model(config, m),
        None => WarpGate::new(config),
    };
    wg.attach(backend.clone());
    wg.index_warehouse()?;
    Ok(WarpGateSystem(wg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_corpora::TestbedSpec;
    use wg_store::{CdwConfig, CdwConnector};

    #[test]
    fn all_systems_answer_queries() {
        let corpus = wg_corpora::build_testbed(&TestbedSpec::xs(0.05));
        let backend: BackendHandle =
            Arc::new(CdwConnector::new(corpus.warehouse, CdwConfig::free()));
        let systems =
            build_systems(&backend, SampleSpec::DistinctReservoir { n: 500, seed: 1 }).unwrap();
        assert_eq!(systems.len(), 3);
        let q = &corpus.queries[0];
        for s in &systems {
            let (hits, timing) = s.query(backend.as_ref(), q, 5).unwrap();
            assert!(hits.len() <= 5, "{} overflowed k", s.name());
            assert!(timing.response_secs() >= 0.0);
        }
    }
}
