//! The paper's published numbers, kept verbatim for side-by-side reports.

/// One row of the paper's Table 1 (dataset statistics).
pub struct PaperTable1Row {
    /// Corpus label as we name it.
    pub corpus: &'static str,
    /// # Tables.
    pub tables: usize,
    /// # Columns.
    pub columns: usize,
    /// Avg. # rows.
    pub avg_rows: f64,
    /// # Queries (`None` = "TBD" in the paper).
    pub queries: Option<usize>,
    /// Avg. # answers (`None` = "N/A").
    pub avg_answers: Option<f64>,
}

/// Paper Table 1.
pub const PAPER_TABLE1: &[PaperTable1Row] = &[
    PaperTable1Row {
        corpus: "testbedXS",
        tables: 28,
        columns: 257,
        avg_rows: 1_938.0,
        queries: Some(35),
        avg_answers: Some(2.8),
    },
    PaperTable1Row {
        corpus: "testbedS",
        tables: 46,
        columns: 2_553,
        avg_rows: 209_646.0,
        queries: Some(177),
        avg_answers: Some(3.6),
    },
    PaperTable1Row {
        corpus: "testbedM",
        tables: 46,
        columns: 1_067,
        avg_rows: 3_175_904.0,
        queries: Some(188),
        avg_answers: Some(4.4),
    },
    PaperTable1Row {
        corpus: "testbedL",
        tables: 19,
        columns: 541,
        avg_rows: 12_288_165.0,
        queries: Some(92),
        avg_answers: Some(3.6),
    },
    PaperTable1Row {
        corpus: "spider",
        tables: 70,
        columns: 429,
        avg_rows: 7_632.0,
        queries: Some(60),
        avg_answers: Some(1.1),
    },
    PaperTable1Row {
        corpus: "sigma",
        tables: 98,
        columns: 1_343,
        avg_rows: 2_243_932.0,
        queries: None,
        avg_answers: None,
    },
];

/// One cell of the paper's Table 2 (end-to-end seconds per query at k=10;
/// WarpGate's index-lookup seconds in parentheses in the paper).
pub struct PaperTable2Row {
    /// Testbed label.
    pub corpus: &'static str,
    /// Aurum seconds/query.
    pub aurum: f64,
    /// D3L seconds/query.
    pub d3l: f64,
    /// WarpGate seconds/query.
    pub warpgate: f64,
    /// WarpGate index-lookup seconds/query.
    pub warpgate_lookup: f64,
}

/// Paper Table 2.
pub const PAPER_TABLE2: &[PaperTable2Row] = &[
    PaperTable2Row {
        corpus: "testbedS",
        aurum: 0.18,
        d3l: 4.77,
        warpgate: 3.12,
        warpgate_lookup: 1.04,
    },
    PaperTable2Row {
        corpus: "testbedM",
        aurum: 0.03,
        d3l: 57.69,
        warpgate: 38.73,
        warpgate_lookup: 8.39,
    },
];

/// Qualitative expectations from Figure 4 used by the reports (the figure
/// publishes curves, not a table; these are the properties the
/// reproduction validates — see EXPERIMENTS.md).
pub const PAPER_FIG4_CLAIMS: &[&str] = &[
    "WarpGate's precision and recall dominate Aurum and D3L on testbedS and testbedM at every k",
    "precision decreases and recall increases as k grows (2, 3, 5, 10)",
    "on Spider, WarpGate outperforms Aurum by a large margin and compares favorably against D3L",
    "D3L's recall on Spider jumps from k=5 to k=10 via its column-name evidence",
];

/// §4.4 claims (sample efficiency + BERT comparison).
pub const PAPER_SEC44_CLAIMS: &[&str] = &[
    "sample sizes 10/100/1000 keep effectiveness within ±1–2% of full values",
    "index lookup time drops by up to two orders of magnitude under sampling",
    "query response time reaches interactive speed (<~35 ms on S, <~65 ms on M per query)",
    "BERT embeddings are on par in effectiveness and robust to sampling, but ~10x slower without sampling",
];

/// §5.1 fleet statistics.
pub struct PaperFleet {
    /// Median tables per customer warehouse.
    pub median_tables: f64,
    /// Mean tables per customer warehouse.
    pub mean_tables: f64,
    /// Average columns per table.
    pub avg_columns: f64,
    /// Median rows per table.
    pub median_rows: f64,
    /// Mean rows per table.
    pub mean_rows: f64,
}

/// Paper §5.1 numbers.
pub const PAPER_FLEET: PaperFleet = PaperFleet {
    median_tables: 450.0,
    mean_tables: 12_700.0,
    avg_columns: 25.7,
    median_rows: 7_700.0,
    mean_rows: 1.7e9,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_is_complete() {
        assert_eq!(PAPER_TABLE1.len(), 6);
        assert_eq!(PAPER_TABLE1[1].columns, 2553);
    }

    #[test]
    fn table2_ordering_holds_in_paper() {
        for row in PAPER_TABLE2 {
            assert!(row.aurum < row.warpgate);
            assert!(row.warpgate < row.d3l);
            assert!(row.warpgate_lookup < row.warpgate * 0.35);
        }
    }
}
