//! Plain-text table rendering for experiment reports.

/// Render an aligned text table with a header rule.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "ragged report row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let emit = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            for _ in cell.chars().count()..widths[i] {
                out.push(' ');
            }
        }
        // No trailing spaces.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    emit(&mut out, &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    emit(&mut out, &rule);
    for row in rows {
        emit(&mut out, row);
    }
    out
}

/// Format a float with `digits` decimals.
pub fn f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Format seconds like the paper's tables (seconds with 2 decimals, or
/// milliseconds when small).
pub fn secs(x: f64) -> String {
    wg_util::timing::fmt_secs(x)
}

/// A section header for the reproduce binary's output.
pub fn section(title: &str) -> String {
    format!("\n=== {title} ===\n\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let t = table(
            &["system", "p@2"],
            &[vec!["Aurum".into(), "0.10".into()], vec!["WarpGate".into(), "0.45".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("system"));
        assert!(lines[1].starts_with("------"));
        assert!(lines[3].starts_with("WarpGate"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_rows() {
        table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.4567, 2), "0.46");
        assert_eq!(f(1.0, 3), "1.000");
    }
}
