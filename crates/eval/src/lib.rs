//! Evaluation harness: regenerates every table and figure of the paper.
//!
//! * [`metrics`] — top-k precision/recall macro-averaged over queries,
//!   exactly as §4.2 reports them;
//! * [`systems`] — one adapter interface over Aurum, D3L and WarpGate so
//!   experiments treat the three systems uniformly;
//! * [`experiments`] — one module per table/figure (see the per-experiment
//!   index in `DESIGN.md`);
//! * [`paper`] — the paper's published numbers, printed side by side with
//!   measurements;
//! * [`report`] — plain-text table rendering.
//!
//! The `reproduce` binary drives everything:
//! `cargo run -p wg-eval --release --bin reproduce -- all`.

pub mod experiments;
pub mod metrics;
pub mod paper;
pub mod report;
pub mod systems;

/// Default corpus scales used by the experiments, overridable with the
/// `WG_ROW_SCALE_MULT` environment variable (a multiplier on all of them).
/// The paper's absolute row counts (hundreds of millions of cells) are
/// reachable but pointless for shape validation; scaled corpora keep the
/// same tables/columns/queries and scale only rows.
pub fn scale_for(corpus: &str) -> f64 {
    let base = match corpus {
        "testbedXS" => 0.25,
        "testbedS" => 0.01,
        "testbedM" => 0.003,
        "testbedL" => 0.001,
        "spider" => 0.1,
        "sigma" => 0.02,
        _ => 0.01,
    };
    let mult =
        std::env::var("WG_ROW_SCALE_MULT").ok().and_then(|s| s.parse::<f64>().ok()).unwrap_or(1.0);
    base * mult
}

#[cfg(test)]
mod tests {
    #[test]
    fn scales_are_positive() {
        for c in ["testbedXS", "testbedS", "testbedM", "testbedL", "spider", "sigma", "?"] {
            assert!(super::scale_for(c) > 0.0);
        }
    }
}
