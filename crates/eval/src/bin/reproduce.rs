//! Reproduce the paper's tables and figures.
//!
//! ```text
//! cargo run -p wg_eval --release --bin reproduce -- all
//! cargo run -p wg_eval --release --bin reproduce -- table1 fig4a fig4b fig4c table2 samples bert sigma scale
//! ```
//!
//! Row scales default to the values in `wg_eval::scale_for`; set
//! `WG_ROW_SCALE_MULT` to scale all corpora up or down.

use wg_corpora::{build_sigma, build_spider, build_testbed, Corpus, TestbedSpec};
use wg_eval::experiments::{bert, figure4, samples, scale, sigma_adhoc, table1, table2};
use wg_eval::experiments::{connect, connect_free};
use wg_eval::{report, scale_for};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec!["table1", "fig4a", "fig4b", "fig4c", "table2", "samples", "bert", "sigma", "scale"]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };

    for exp in what {
        match exp {
            "table1" => run_table1(),
            "fig4a" => run_fig4("a", testbed_s(), false),
            "fig4b" => run_fig4("b", testbed_m(), false),
            "fig4c" => run_fig4("c", spider(), true),
            "table2" => run_table2(),
            "samples" => run_samples(),
            "bert" => run_bert(),
            "sigma" => run_sigma(),
            "scale" => run_scale(),
            other => eprintln!("unknown experiment '{other}' (see README)"),
        }
    }
}

fn testbed_s() -> Corpus {
    build_testbed(&TestbedSpec::s(scale_for("testbedS")))
}

fn testbed_m() -> Corpus {
    build_testbed(&TestbedSpec::m(scale_for("testbedM")))
}

fn spider() -> Corpus {
    build_spider(scale_for("spider"), 0x5919)
}

fn run_table1() {
    println!("{}", report::section("Table 1: dataset statistics (measured / paper)"));
    let rows = table1::run();
    println!("{}", table1::render(&rows));
}

fn run_fig4(panel: &str, corpus: Corpus, spider_panel: bool) {
    eprintln!("[fig4{panel}] building systems over {} ...", corpus.name);
    let connector = connect_free(corpus.warehouse.clone());
    let points = figure4::run(&corpus, &connector);
    println!("{}", figure4::render(panel, &points));
    let verdict = if spider_panel {
        // Panel (c): the paper claims a large margin over Aurum and
        // favorable comparison against D3L, not strict dominance.
        figure4::check_spider(&points, 0.1, 0.25).map_or_else(
            || "WarpGate beats Aurum by a large margin, comparable to D3L [ok]".to_string(),
            |v| format!("VIOLATION - {v}"),
        )
    } else {
        figure4::check_warpgate_dominates(&points, 0.02).map_or_else(
            || "WarpGate dominates both baselines [ok]".to_string(),
            |v| format!("VIOLATION - {v}"),
        )
    };
    println!("check: {verdict}");
}

fn run_table2() {
    for corpus in [testbed_s(), testbed_m()] {
        eprintln!("[table2] timing workload on {} ...", corpus.name);
        let connector = connect(corpus.warehouse.clone());
        let rows = table2::run(&corpus, &connector);
        println!("{}", table2::render(&rows));
        match table2::check_ordering(&rows) {
            None => println!("check: Aurum << WarpGate < D3L, lookup is a minority share [ok]"),
            Some(v) => println!("check: VIOLATION - {v}"),
        }
    }
}

fn run_samples() {
    for corpus in [testbed_s(), testbed_m()] {
        eprintln!("[samples] sweep on {} ...", corpus.name);
        let connector = connect(corpus.warehouse.clone());
        let rows = samples::run(&corpus, &connector);
        println!("{}", samples::render(&corpus.name, &rows));
        match samples::check_robustness(&rows, "1000", 0.05, 1.0) {
            None => println!("check: sample 1000 within tolerance of full, faster [ok]"),
            Some(v) => println!("check: VIOLATION - {v}"),
        }
    }
}

fn run_bert() {
    // BERT inference is deliberately expensive; XS keeps the sweep minutes-
    // scale while exercising identical code paths (documented deviation).
    let corpus = build_testbed(&TestbedSpec::xs(scale_for("testbedXS")));
    eprintln!("[bert] model comparison on {} ...", corpus.name);
    let connector = connect(corpus.warehouse.clone());
    let rows = bert::run(&corpus, &connector);
    println!("{}", bert::render(&corpus.name, &rows));
    match bert::check_claims(&rows, 0.2, 3.0) {
        None => println!("check: on-par effectiveness, materially slower inference [ok]"),
        Some(v) => println!("check: VIOLATION - {v}"),
    }
}

fn run_sigma() {
    eprintln!("[sigma] ad-hoc walkthrough ...");
    let corpus = build_sigma(scale_for("sigma"), 0x51);
    let connector = connect_free(corpus.warehouse.clone());
    let result = sigma_adhoc::run(&connector);
    println!("{}", sigma_adhoc::render(&result));
}

fn run_scale() {
    let r = scale::run(4_000, 7);
    println!("{}", scale::render(&r));
}
