//! # WarpGate — semantic join discovery for cloud data warehouses
//!
//! A from-scratch Rust reproduction of *"WarpGate: A Semantic Join
//! Discovery System for Cloud Data Warehouses"* (CIDR 2023). This facade
//! crate re-exports the whole workspace behind one dependency:
//!
//! ```
//! use warpgate::prelude::*;
//!
//! // A tiny warehouse with two joinable columns in different formats.
//! let mut warehouse = Warehouse::new("demo");
//! warehouse.database_mut("crm").add_table(
//!     Table::new(
//!         "accounts",
//!         vec![Column::text(
//!             "name",
//!             ["Acme Corp", "Globex Inc", "Initech LLC", "Hooli Co", "Stark Industries"],
//!         )],
//!     )
//!     .unwrap(),
//! );
//! warehouse.database_mut("finance").add_table(
//!     Table::new(
//!         "industries",
//!         vec![
//!             Column::text(
//!                 "company",
//!                 ["ACME CORP", "GLOBEX INC", "INITECH LLC", "HOOLI CO", "STARK INDUSTRIES"],
//!             ),
//!             Column::text(
//!                 "sector",
//!                 ["Manufacturing", "Energy", "Software", "Media", "Biotech"],
//!             ),
//!         ],
//!     )
//!     .unwrap(),
//! );
//!
//! // Attach a backend (here: the simulated CDW), index, discover.
//! let backend: BackendHandle = std::sync::Arc::new(CdwConnector::with_defaults(warehouse));
//! let wg = WarpGate::with_backend(WarpGateConfig::default(), backend);
//! wg.index_warehouse().unwrap();
//! let query = ColumnRef::new("crm", "accounts", "name");
//! let discovery = wg.discover(&query, 3).unwrap();
//! assert_eq!(discovery.candidates[0].reference.table, "industries");
//! ```
//!
//! Any [`store::WarehouseBackend`] plugs into the same seam: the simulated
//! CDW above, a `CsvBackend` over a directory of exports, a
//! `FaultInjector` wrapping either, a `RetryBackend` adding
//! backoff-with-jitter resilience, or a `RemoteBackend` reaching a
//! warehouse served over TCP by a `RemoteBackendServer`.
//! `WarpGate::sync()` keeps the index incremental as the attached
//! warehouse changes, and `SyncDaemon` runs that reconciliation on a
//! schedule with circuit breaking (see the `resilient_service` example
//! for the full stack).
//!
//! Under load the system degrades gracefully rather than hanging:
//! admission control (`WarpGateConfig::with_admission`) sheds excess
//! requests fast with the retryable `StoreError::Overloaded`, per-tenant
//! token-bucket quotas (`QuotaPolicy`) isolate noisy neighbors, and
//! cooperative deadlines (`QueryOptions` / `Deadline`) guarantee an
//! expired request stops before its next billed scan or cold block read.
//!
//! ## Workspace map
//!
//! | crate | contents |
//! |---|---|
//! | [`warpgate_core`] | the WarpGate system (indexing + search pipelines) |
//! | [`wg_store`] | column store, catalog, CSV, sampling, joins, simulated CDW |
//! | [`wg_embed`] | hashed web-table embeddings, mini transformer, aggregation |
//! | [`wg_lsh`] | SimHash & MinHash LSH indexes, exact search |
//! | [`wg_profile`] | column profiles (MinHash, stats, formats, q-grams) |
//! | [`wg_baselines`] | Aurum and D3L |
//! | [`wg_corpora`] | NextiaJD / Spider / Sigma corpus generators + fleet model |
//! | [`wg_eval`] | metrics, experiment runners, the `reproduce` binary |
//! | [`wg_util`] | hashing, deterministic PRNG, top-k, timing, binary codec |
//!
//! See `DESIGN.md` for the system inventory and the per-experiment index,
//! and `EXPERIMENTS.md` for paper-vs-measured results.

pub use warpgate_core as core;
pub use wg_baselines as baselines;
pub use wg_corpora as corpora;
pub use wg_embed as embed;
pub use wg_eval as eval;
pub use wg_lsh as lsh;
pub use wg_profile as profile;
pub use wg_store as store;
pub use wg_util as util;

/// The types most applications need, importable in one line.
pub mod prelude {
    pub use warpgate_core::{
        AdmissionStats, BackendCircuit, CheckpointPolicy, Checkpointer, CircuitState, CrashState,
        DaemonReport, Discovery, JoinCandidate, QueryOptions, QueryTiming, QuotaPolicy,
        RecoveryReport, RecoverySource, SyncDaemon, SyncDaemonConfig, SyncReport, SyncSchedule,
        TenantId, TenantQuota, TornWriter, WarpGate, WarpGateConfig,
    };
    pub use wg_embed::{Aggregation, ColumnEmbedder, EmbeddingModel, WebTableModel};
    pub use wg_lsh::DiscoverScope;
    pub use wg_store::{
        BackendHandle, BackendId, BackendRegistry, CdwConfig, CdwConnector, Column, ColumnRef,
        CsvBackend, Database, FaultInjector, FaultPlan, JoinType, KeyNorm, RemoteBackend,
        RemoteBackendServer, RemoteServerConfig, RemoteServerStats, RetryBackend, RetryPolicy,
        SampleSpec, StoreError, SystemClock, Table, TableMeta, TableRef, Warehouse,
        WarehouseBackend,
    };
    pub use wg_util::{Deadline, Phase};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let mut warehouse = Warehouse::new("w");
        warehouse
            .database_mut("db")
            .add_table(Table::new("t", vec![Column::text("c", ["x", "y"])]).unwrap());
        let backend: BackendHandle =
            std::sync::Arc::new(CdwConnector::new(warehouse, CdwConfig::free()));
        let wg = WarpGate::with_backend(WarpGateConfig::default(), backend);
        let report = wg.index_warehouse().unwrap();
        assert_eq!(report.columns_indexed, 1);
    }
}
