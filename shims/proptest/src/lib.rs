//! Minimal, API-compatible stand-in for the [`proptest`] crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset the workspace's property tests use:
//!
//! - the [`strategy::Strategy`] trait with `prop_map`, [`strategy::Just`],
//!   tuple / range / `&str`-pattern strategies, and [`collection::vec`];
//! - [`any`] for primitive types;
//! - the `proptest!`, `prop_oneof!`, `prop_assert!`, and `prop_assert_eq!`
//!   macros;
//! - a deterministic per-test RNG (seeded from the test name), so runs are
//!   reproducible — there is no failure-case shrinking, the failing inputs
//!   are reported as generated.
//!
//! String strategies accept the small regex subset the tests use: literal
//! characters, `[...]` classes with ranges, `(...)` groups, and the
//! `{m,n}` / `?` / `*` / `+` quantifiers.
//!
//! [`proptest`]: https://docs.rs/proptest

pub mod test_runner {
    //! Deterministic RNG, config, and error type for test cases.

    /// Per-test deterministic RNG (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test name.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name gives a stable, well-spread seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: h }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound` must be positive.
        pub fn usize_below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "usize_below(0)");
            (self.next_u64() % bound as u64) as usize
        }
    }

    /// Run configuration; only the case count is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// A failed property: carries the assertion message.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail(message: impl Into<String>) -> Self {
            Self { message: message.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::pattern;
    use crate::test_runner::TestRng;

    /// Generates values of `Self::Value` from an RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, func: f }
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        func: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.func)(self.source.generate(rng))
        }
    }

    type UnionArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

    /// Uniform choice between heterogeneous strategies with one value type
    /// (what `prop_oneof!` builds).
    pub struct Union<V> {
        arms: Vec<UnionArm<V>>,
    }

    impl<V> Union<V> {
        /// An empty union; populate with [`Union::or`].
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Self { arms: Vec::new() }
        }

        /// Add an equally-weighted arm.
        pub fn or(mut self, s: impl Strategy<Value = V> + 'static) -> Self {
            self.arms.push(Box::new(move |rng| s.generate(rng)));
            self
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
            self.arms[rng.usize_below(self.arms.len())](rng)
        }
    }

    /// String generation from a regex-like pattern literal.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            pattern::generate(self, rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Widen to i64 before subtracting: wrapping_sub in the
                    // narrow type would sign-extend through `as u64` and
                    // blow the span up to ~u64::MAX (e.g. -100i8..100).
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    // Truncation of the offset is fine: the true result fits
                    // in $t, so modular addition lands on it exactly.
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )+};
    }

    signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let v = self.start + rng.next_f64() as $t * (self.end - self.start);
                    // Rounding can land exactly on `end`; the range is
                    // half-open, so fold that case back onto `start`.
                    if v < self.end {
                        v
                    } else {
                        self.start
                    }
                }
            }
        )+};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($n:tt $S:ident),+)),+ $(,)?) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (0 A, 1 B),
        (0 A, 1 B, 2 C),
        (0 A, 1 B, 2 C, 3 D),
    );
}

pub mod arbitrary {
    //! `any::<T>()` for primitives.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, wide dynamic range.
            (rng.next_f64() - 0.5) * 2.0e12
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f64::arbitrary(rng) as f32
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Printable ASCII keeps generated text well-formed everywhere.
            (b' ' + (rng.next_u64() % 95) as u8) as char
        }
    }

    /// Strategy over `T`'s whole domain.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                self.size.start + rng.usize_below(self.size.end - self.size.start)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `element` values with length in `size` (half-open).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }
}

pub(crate) mod pattern {
    //! Generation from the small regex subset used in string strategies.

    use crate::test_runner::TestRng;
    use std::iter::Peekable;
    use std::str::Chars;

    enum Node {
        Literal(char),
        /// Inclusive character ranges; single chars are `(c, c)`.
        Class(Vec<(char, char)>),
        Group(Vec<Atom>),
    }

    struct Atom {
        node: Node,
        min: usize,
        max: usize,
    }

    /// Generate one string matching `pattern`.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut chars = pattern.chars().peekable();
        let atoms = parse_seq(&mut chars, None, pattern);
        let mut out = String::new();
        emit_seq(&atoms, rng, &mut out);
        out
    }

    fn parse_seq(chars: &mut Peekable<Chars>, until: Option<char>, pat: &str) -> Vec<Atom> {
        let mut atoms = Vec::new();
        while let Some(&c) = chars.peek() {
            if Some(c) == until {
                chars.next();
                return atoms;
            }
            chars.next();
            let node = match c {
                '[' => parse_class(chars, pat),
                '(' => Node::Group(parse_seq(chars, Some(')'), pat)),
                '\\' => Node::Literal(chars.next().unwrap_or_else(|| bad(pat))),
                '.' => Node::Class(vec![(' ', '~')]),
                _ => Node::Literal(c),
            };
            let (min, max) = parse_quant(chars, pat);
            atoms.push(Atom { node, min, max });
        }
        if until.is_some() {
            bad(pat); // unterminated group
        }
        atoms
    }

    fn parse_class(chars: &mut Peekable<Chars>, pat: &str) -> Node {
        let mut ranges = Vec::new();
        loop {
            let c = chars.next().unwrap_or_else(|| bad(pat));
            if c == ']' {
                if ranges.is_empty() {
                    bad(pat); // empty class
                }
                return Node::Class(ranges);
            }
            let c = if c == '\\' { chars.next().unwrap_or_else(|| bad(pat)) } else { c };
            // `c-d` is a range unless `-` is the closing char of the class.
            if chars.peek() == Some(&'-') {
                let mut ahead = chars.clone();
                ahead.next();
                if ahead.peek().is_some_and(|&d| d != ']') {
                    chars.next(); // consume '-'
                    let d = chars.next().unwrap_or_else(|| bad(pat));
                    if d < c {
                        bad(pat);
                    }
                    ranges.push((c, d));
                    continue;
                }
            }
            ranges.push((c, c));
        }
    }

    fn parse_quant(chars: &mut Peekable<Chars>, pat: &str) -> (usize, usize) {
        match chars.peek() {
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('{') => {
                chars.next();
                let mut min = String::new();
                let mut max = String::new();
                let mut in_max = false;
                loop {
                    match chars.next().unwrap_or_else(|| bad(pat)) {
                        '}' => break,
                        ',' => in_max = true,
                        d if d.is_ascii_digit() => if in_max { &mut max } else { &mut min }.push(d),
                        _ => bad(pat),
                    }
                }
                let lo: usize = min.parse().unwrap_or_else(|_| bad(pat));
                let hi: usize = if in_max { max.parse().unwrap_or_else(|_| bad(pat)) } else { lo };
                if hi < lo {
                    bad(pat);
                }
                (lo, hi)
            }
            _ => (1, 1),
        }
    }

    fn emit_seq(atoms: &[Atom], rng: &mut TestRng, out: &mut String) {
        for atom in atoms {
            let n = atom.min + rng.usize_below(atom.max - atom.min + 1).min(atom.max - atom.min);
            for _ in 0..n {
                match &atom.node {
                    Node::Literal(c) => out.push(*c),
                    Node::Class(ranges) => {
                        let total: u32 = ranges.iter().map(|&(a, b)| b as u32 - a as u32 + 1).sum();
                        let mut pick = rng.usize_below(total as usize) as u32;
                        for &(a, b) in ranges {
                            let size = b as u32 - a as u32 + 1;
                            if pick < size {
                                out.push(char::from_u32(a as u32 + pick).unwrap());
                                break;
                            }
                            pick -= size;
                        }
                    }
                    Node::Group(inner) => emit_seq(inner, rng, out),
                }
            }
        }
    }

    fn bad(pat: &str) -> ! {
        panic!("unsupported or malformed pattern in proptest shim: {pat:?}")
    }
}

/// The usual imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or($strategy))+
    };
}

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, "assertion failed: `{:?}` == `{:?}`", left, right);
    }};
}

/// Defines deterministic property tests over generated inputs.
///
/// Supports the standard form: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// arguments are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $config; $($rest)*);
    };
    (@impl $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::strategy::Strategy::generate(&$strategy, &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {} of {}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn patterns_match_their_own_grammar() {
        let mut rng = TestRng::from_name("patterns");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9_]{0,10}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 11, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));

            let t = Strategy::generate(&"[a-z]{1,8}( [a-z]{1,8})?", &mut rng);
            let words: Vec<&str> = t.split(' ').collect();
            assert!((1..=2).contains(&words.len()), "{t:?}");
            for w in words {
                assert!((1..=8).contains(&w.len()) && w.chars().all(|c| c.is_ascii_lowercase()));
            }

            let u = Strategy::generate(&"[ -~]{0,18}", &mut rng);
            assert!(u.len() <= 18 && u.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn signed_ranges_wider_than_the_type_max_stay_in_bounds() {
        let mut rng = TestRng::from_name("signed");
        for _ in 0..500 {
            let v = Strategy::generate(&(-100i8..100), &mut rng);
            assert!((-100..100).contains(&v), "{v}");
            let w = Strategy::generate(&(i64::MIN..i64::MAX), &mut rng);
            assert!(w < i64::MAX);
        }
    }

    #[test]
    fn float_ranges_are_half_open() {
        let mut rng = TestRng::from_name("half-open");
        // One-ulp span: rounding pressure toward `end` is maximal here.
        let tight = 1.0f64..(1.0 + f64::EPSILON);
        for _ in 0..500 {
            let v = Strategy::generate(&(0.0f32..1.0), &mut rng);
            assert!((0.0..1.0).contains(&v), "{v}");
            let t = Strategy::generate(&tight, &mut rng);
            assert!((1.0..1.0 + f64::EPSILON).contains(&t), "{t}");
        }
    }

    #[test]
    fn ranges_and_collections_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..200 {
            let x = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&x));
            let f = Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let v = Strategy::generate(&prop::collection::vec(0u32..5, 1..4), &mut rng);
            assert!((1..4).contains(&v.len()) && v.iter().all(|&e| e < 5));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = TestRng::from_name("oneof");
        let strategy = prop_oneof![Just(0u8), Just(1u8), (2u8..4).prop_map(|v| v)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Strategy::generate(&strategy, &mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_multiple_args(a in 0usize..10, mut b in prop::collection::vec(0u8..3, 0..5)) {
            b.push(a as u8);
            prop_assert!(!b.is_empty());
            prop_assert_eq!(*b.last().unwrap() as usize, a);
        }
    }
}
