//! Minimal, API-compatible stand-in for the [`bytes`] crate.
//!
//! The build environment has no crates.io access, so this shim provides the
//! exact [`Buf`]/[`BufMut`] subset `wg_util::codec` relies on: little-endian
//! fixed-width reads/writes over `&[u8]` readers and `Vec<u8>` writers.
//! Semantics match the real crate for that subset (including the panic on
//! reading past the end — callers bounds-check with [`Buf::remaining`]).
//!
//! [`bytes`]: https://docs.rs/bytes

/// Read access to a contiguous or chunked byte cursor.
///
/// Implemented for `&[u8]`, which advances the slice itself as bytes are
/// consumed — mirroring the real crate's blanket impl.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Consume `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Copy `dst.len()` bytes into `dst`, advancing. Panics on underflow.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "cannot advance past end of buffer");
        *self = &self[cnt..];
    }
}

impl<T: Buf + ?Sized> Buf for &mut T {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

/// Write access to a growable byte sink. Implemented for `Vec<u8>`.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<T: BufMut + ?Sized> BufMut for &mut T {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(0xAB);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_i64_le(-7);
        buf.put_f32_le(3.5);
        buf.put_f64_le(-0.125);
        buf.put_slice(b"xyz");

        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_i64_le(), -7);
        assert_eq!(r.get_f32_le(), 3.5);
        assert_eq!(r.get_f64_le(), -0.125);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
