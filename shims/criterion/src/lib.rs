//! Minimal, API-compatible stand-in for the [`criterion`] benchmark harness.
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset the `wg_bench` targets use — `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros —
//! as a small wall-clock timing loop. It reports median iteration time
//! per benchmark to stdout. Statistical analysis, plots, and baseline
//! comparison are out of scope; swap in the real crate for those.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group, as `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id: `function_id/parameter`.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", function_id.into(), parameter) }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> Self {
        Self { id: s.clone() }
    }
}

/// Passed to the closure given to [`Bencher::iter`]; times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level harness handle passed to every bench function.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { default_samples: 10 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), samples: self.default_samples, _parent: self }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.samples = n;
        self
    }

    /// Time `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let median = self.run(&mut f);
        report(&self.name, &id.id, median);
        self
    }

    /// Time `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let median = self.run(&mut |b: &mut Bencher| f(b, input));
        report(&self.name, &id.id, median);
        self
    }

    /// Close the group. (No-op: the shim reports as it goes.)
    pub fn finish(self) {}

    /// Collect `self.samples` timed samples of one iteration each (after a
    /// warm-up call) and return the median per-iteration time.
    fn run(&self, f: &mut dyn FnMut(&mut Bencher)) -> Duration {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b); // warm-up
        let mut samples: Vec<Duration> = (0..self.samples)
            .map(|_| {
                f(&mut b);
                b.elapsed
            })
            .collect();
        samples.sort();
        samples[samples.len() / 2]
    }
}

fn report(group: &str, id: &str, median: Duration) {
    println!("bench: {group}/{id} ... median {median:?}");
}

/// Declare a bench group: `criterion_group!(name, fn1, fn2, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench entry point: `criterion_main!(group1, group2, ...)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        // warm-up + 3 samples, one iteration each
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
    }
}
