//! Minimal, API-compatible stand-in for the [`crossbeam`] crate.
//!
//! Provides the one primitive this workspace uses: an unbounded MPMC
//! [`channel`] whose receivers can be cloned across worker threads (which
//! `std::sync::mpsc` cannot do). Built on `Mutex<VecDeque>` + `Condvar`;
//! disconnect semantics match crossbeam: `send` fails once every receiver
//! is gone, and receiver iteration ends once every sender is gone and the
//! queue has drained.
//!
//! [`crossbeam`]: https://docs.rs/crossbeam

pub mod channel {
    //! Unbounded multi-producer multi-consumer FIFO channel.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        available: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent value back, like crossbeam's.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half; clonable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clonable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            available: Condvar::new(),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueue `value`, failing if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.shared.available.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().senders += 1;
            Self { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                // Wake blocked receivers so they can observe disconnection.
                self.shared.available.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue the next value, blocking; fails once the channel is
        /// empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.available.wait(inner).unwrap();
            }
        }

        /// Dequeue without blocking; `None` when empty right now.
        pub fn try_recv(&self) -> Option<T> {
            self.shared.inner.lock().unwrap().queue.pop_front()
        }

        /// Blocking iterator over values; ends on disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().receivers += 1;
            Self { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.inner.lock().unwrap().receivers -= 1;
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fifo_within_single_consumer() {
        let (tx, rx) = channel::unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn mpmc_fan_out_fan_in() {
        let (work_tx, work_rx) = channel::unbounded::<u64>();
        let (done_tx, done_rx) = channel::unbounded::<u64>();
        for i in 0..100 {
            work_tx.send(i).unwrap();
        }
        drop(work_tx);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let work_rx = work_rx.clone();
                let done_tx = done_tx.clone();
                scope.spawn(move || {
                    for v in work_rx.iter() {
                        done_tx.send(v * 2).unwrap();
                    }
                });
            }
            drop(done_tx);
            let mut out: Vec<u64> = done_rx.iter().collect();
            out.sort();
            assert_eq!(out, (0..100).map(|v| v * 2).collect::<Vec<_>>());
        });
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert_eq!(tx.send(1), Err(channel::SendError(1)));
    }
}
