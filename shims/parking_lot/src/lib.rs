//! Minimal, API-compatible stand-in for the [`parking_lot`] crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API
//! (`lock()` / `read()` / `write()` return guards directly, not `Result`s).
//! Poisoning is neutralised by unwrapping into the inner guard: a panic
//! while holding a lock will propagate the poison as a recovered guard,
//! matching `parking_lot`'s "no poisoning" semantics closely enough for
//! this workspace's single-process use.
//!
//! [`parking_lot`]: https://docs.rs/parking_lot

use std::sync::{self, PoisonError};

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader–writer lock with `parking_lot`'s panic-free interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock wrapping `value`.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A mutual-exclusion lock with `parking_lot`'s panic-free interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex wrapping `value`.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let lock = std::sync::Arc::new(RwLock::new(7));
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*lock.read(), 7);
    }
}
