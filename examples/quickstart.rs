//! Quickstart: build a small warehouse, index it, discover joinable
//! columns, and execute a lookup join.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use warpgate::prelude::*;

fn main() {
    // 1. A warehouse with three databases whose tables store the same
    //    companies in different formats — the situation the paper calls
    //    "semantically joinable": no exact value overlap, same entities.
    let mut warehouse = Warehouse::new("demo");
    warehouse.database_mut("crm").add_table(
        Table::new(
            "accounts",
            vec![
                Column::text(
                    "name",
                    ["Acme Corp", "Globex Inc", "Initech LLC", "Hooli Co", "Umbrella Ltd"],
                ),
                Column::ints("employees", vec![1200, 340, 77, 9001, 450]),
            ],
        )
        .expect("valid table"),
    );
    warehouse.database_mut("finance").add_table(
        Table::new(
            "industries",
            vec![
                Column::text(
                    "company",
                    ["ACME CORP", "GLOBEX INC", "INITECH LLC", "HOOLI CO", "WAYNE ENTERPRISES"],
                ),
                Column::text("sector", ["Manufacturing", "Energy", "Software", "Media", "Defense"]),
            ],
        )
        .expect("valid table"),
    );
    warehouse.database_mut("hr").add_table(
        Table::new(
            "offices",
            vec![
                Column::text("city", ["Austin", "Boston", "Chicago"]),
                Column::ints("headcount", vec![40, 200, 75]),
            ],
        )
        .expect("valid table"),
    );

    // 2. Attach the warehouse backend (the simulated CDW meters scans like
    //    a real pay-per-byte warehouse; a `CsvBackend` or any other
    //    `WarehouseBackend` plugs into the same seam) and build the
    //    WarpGate index: sample → embed → SimHash LSH.
    let connector = std::sync::Arc::new(CdwConnector::with_defaults(warehouse));
    let warpgate = WarpGate::with_backend(WarpGateConfig::default(), connector.clone());
    let report = warpgate.index_warehouse().expect("indexing");
    println!(
        "indexed {} columns in {:.1} ms ({} scan requests, {} bytes billed)\n",
        report.columns_indexed,
        report.elapsed_secs * 1e3,
        report.cost.requests,
        report.cost.bytes_scanned,
    );

    // 3. Top-k semantic join discovery for crm.accounts.name.
    let query = ColumnRef::new("crm", "accounts", "name");
    let discovery = warpgate.discover(&query, 3).expect("discover");
    println!("top-{} recommendations for {query}:", discovery.candidates.len());
    for (rank, c) in discovery.candidates.iter().enumerate() {
        println!("  {}. {}  (similarity {:.3})", rank + 1, c.reference, c.score);
    }
    println!(
        "\ntiming: load {:.2} ms + embed {:.2} ms + lookup {:.2} ms (+{:.2} ms network)",
        discovery.timing.load_secs * 1e3,
        discovery.timing.embed_secs * 1e3,
        discovery.timing.lookup_secs * 1e3,
        discovery.timing.virtual_load_secs * 1e3,
    );

    // 4. "Add column via lookup": pull `sector` next to the account names,
    //    joining across the formatting difference with AlphaNum keys.
    let best = &discovery.candidates[0].reference;
    let base = connector.scan_table("crm", "accounts", SampleSpec::Full).expect("scan base table");
    let augmented = warpgate
        .augment_via_lookup(&base, "name", best, &["sector"], KeyNorm::AlphaNum)
        .expect("lookup join");
    println!("\naccounts augmented via lookup join with {best}:\n");
    println!("{}", augmented.render(10));
}
