//! The paper's running example (§1, §3.2, §4.3.3 / Figures 1 & 3): business
//! user Joey prepares a sales campaign.
//!
//! She starts from `SALESFORCE.ACCOUNT` in a 98-table warehouse, asks
//! WarpGate what joins with the `Name` column, inspects the
//! recommendations, enriches the table with `Industry Group` from
//! `STOCKS.INDUSTRIES`, and then chains through `Ticker` to stock prices to
//! shortlist high-performing companies in targeted sectors.
//!
//! ```text
//! cargo run --release --example sales_campaign
//! ```

use warpgate::corpora::build_sigma;
use warpgate::prelude::*;

fn main() {
    // The Sigma Sample Database stand-in: 98 tables across 6 databases.
    let corpus = build_sigma(0.02, 0x51);
    let connector = std::sync::Arc::new(CdwConnector::with_defaults(corpus.warehouse));
    println!(
        "warehouse: {} tables, {} columns\n",
        connector.warehouse().num_tables(),
        connector.warehouse().num_columns()
    );

    let warpgate = WarpGate::with_backend(WarpGateConfig::default(), connector.clone());
    let report = warpgate.index_warehouse().expect("indexing");
    println!(
        "indexed {} columns in {:.2} s (billed ${:.6} for {} MB scanned)\n",
        report.columns_indexed,
        report.elapsed_secs,
        report.cost.usd,
        report.cost.bytes_scanned / (1 << 20),
    );

    // Step 1+2 (Fig. 3): right-click ACCOUNT.Name → "Add column via lookup".
    let query = ColumnRef::new("SALESFORCE", "ACCOUNT", "Name");
    let discovery = warpgate.discover(&query, 3).expect("discover");
    println!("join path recommendations for {query}:");
    println!("  {:<28} {:<14} {:<12} similarity", "column", "table", "database");
    for c in &discovery.candidates {
        println!(
            "  {:<28} {:<14} {:<12} {:.3}",
            c.reference.column, c.reference.table, c.reference.database, c.score
        );
    }

    // Joey browses LEAD first (contact points — not what she needs), then
    // picks the INDUSTRIES candidate from the STOCKS database.
    let industries = discovery
        .candidates
        .iter()
        .map(|c| &c.reference)
        .find(|r| r.table == "INDUSTRIES")
        .expect("INDUSTRIES should be recommended");
    println!("\nJoey picks: {industries}");

    // Step 3: enrich ACCOUNT with the sector column.
    let account =
        connector.scan_table("SALESFORCE", "ACCOUNT", SampleSpec::Full).expect("scan ACCOUNT");
    let enriched = warpgate
        .augment_via_lookup(
            &account,
            "Name",
            industries,
            &["Industry Group", "Ticker"],
            KeyNorm::AlphaNum,
        )
        .expect("lookup join");
    println!("\nACCOUNT enriched with sector + ticker:\n");
    println!("{}", enriched.head(6).render(6));

    // "Even more interestingly": chain through TICKER to the PRICES table
    // and compute a mean closing price per account.
    let prices_ref = ColumnRef::new("STOCKS", "PRICES", "Ticker");
    let with_prices = warpgate
        .augment_via_lookup(&enriched, "Ticker", &prices_ref, &["Close"], KeyNorm::Exact)
        .expect("price chain join");

    // Shortlist: Information Technology accounts with a known price.
    let sector = with_prices.column("Industry Group").expect("sector column");
    let close = with_prices.column("Close").expect("close column");
    let name = with_prices.column("Name").expect("name column");
    println!("campaign shortlist (Information Technology, priced):");
    let mut shown = 0;
    for row in 0..with_prices.num_rows() {
        let s = sector.get(row).to_string();
        if s == "Information Technology" && !close.get(row).is_null() {
            println!("  {:<32} close {}", name.get(row), close.get(row));
            shown += 1;
            if shown >= 8 {
                break;
            }
        }
    }
    if shown == 0 {
        println!("  (no matching accounts at this corpus scale)");
    }

    println!(
        "\nquery-phase scan cost so far: ${:.6} ({} requests)",
        connector.costs().usd,
        connector.costs().requests
    );
}
