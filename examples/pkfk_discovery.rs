//! PK/FK detection on a Spider-style multi-database corpus (§4.3.2 /
//! Figure 4(c)): compare WarpGate against the syntactic Aurum baseline on
//! the join shape that defeats Jaccard thresholds — foreign keys fully
//! *contained* in much larger primary keys.
//!
//! ```text
//! cargo run --release --example pkfk_discovery
//! ```

use warpgate::baselines::{Aurum, AurumConfig};
use warpgate::corpora::build_spider;
use warpgate::eval::metrics::precision_recall_at_k;
use warpgate::prelude::*;

fn main() {
    let corpus = build_spider(0.1, 0x5919);
    let connector =
        std::sync::Arc::new(CdwConnector::new(corpus.warehouse.clone(), CdwConfig::free()));
    println!(
        "spider-style corpus: {} tables / {} columns / {} FK queries\n",
        corpus.warehouse.num_tables(),
        corpus.warehouse.num_columns(),
        corpus.queries.len()
    );

    // Build both systems over the same warehouse.
    let warpgate = WarpGate::with_backend(WarpGateConfig::default(), connector.clone());
    warpgate.index_warehouse().expect("warpgate indexing");
    let aurum = Aurum::build(connector.as_ref(), AurumConfig::default()).expect("aurum build");
    println!(
        "Aurum EKG: {} columns, {} edges (content {} / schema {})",
        aurum.num_columns(),
        aurum.num_edges(),
        aurum.edge_counts().0,
        aurum.edge_counts().1
    );

    // Evaluate both on the FK→PK workload.
    for k in [2usize, 10] {
        let mut wg_p = 0.0;
        let mut wg_r = 0.0;
        let mut au_p = 0.0;
        let mut au_r = 0.0;
        for q in &corpus.queries {
            let answers = corpus.truth.answers(q);
            let wg_hits: Vec<ColumnRef> = warpgate
                .discover(q, k)
                .expect("discover")
                .candidates
                .into_iter()
                .map(|c| c.reference)
                .collect();
            let (p, r) = precision_recall_at_k(&wg_hits, answers, k);
            wg_p += p;
            wg_r += r;
            let au_hits: Vec<ColumnRef> =
                aurum.neighbors(q, k).expect("aurum").into_iter().map(|(r, _)| r).collect();
            let (p, r) = precision_recall_at_k(&au_hits, answers, k);
            au_p += p;
            au_r += r;
        }
        let n = corpus.queries.len() as f64;
        println!(
            "\nk={k}:  WarpGate P {:.3} / R {:.3}   |   Aurum P {:.3} / R {:.3}",
            wg_p / n,
            wg_r / n,
            au_p / n,
            au_r / n
        );
    }

    // Show one concrete FK→PK discovery with the containment/Jaccard
    // asymmetry that explains the gap.
    let q = &corpus.queries[0];
    let answer = &corpus.truth.answers(q)[0];
    let fk = connector.scan_column(q, SampleSpec::Full).expect("scan fk");
    let pk = connector.scan_column(answer, SampleSpec::Full).expect("scan pk");
    println!(
        "\nexample pair {q} -> {answer}:\n  containment(FK in PK) = {:.2}, jaccard = {:.2}",
        warpgate::store::containment(&fk, &pk, KeyNorm::Exact),
        warpgate::store::jaccard(&fk, &pk, KeyNorm::Exact),
    );
    let top = warpgate.discover(q, 3).expect("discover");
    println!("  WarpGate top-3 for the FK:");
    for c in &top.candidates {
        println!("    {}  ({:.3})", c.reference, c.score);
    }
}
