//! The resilient service stack, end to end: a WarpGate node indexing a
//! warehouse it only reaches over the network, through retrying
//! middleware, kept fresh by the scheduled-sync daemon.
//!
//! Composition (outermost first):
//!
//! ```text
//! WarpGate ── RetryBackend ── RemoteBackend ──TCP──▶ RemoteBackendServer
//!                                                        └─ FaultInjector ── CdwConnector
//! ```
//!
//! The fault injector on the *server* side fails every 3rd scan — a flaky
//! warehouse — and the client-side retry layer rides the failures out with
//! exponential backoff. A `SyncDaemon` then picks up a data change without
//! any manual `sync()` call.
//!
//! ```text
//! cargo run --release --example resilient_service
//! ```

use std::sync::Arc;
use std::time::Duration;

use warpgate::prelude::*;

fn main() {
    // --- The "warehouse side": a flaky CDW served over TCP. -------------
    let mut warehouse = Warehouse::new("prod");
    warehouse.database_mut("crm").add_table(
        Table::new(
            "accounts",
            vec![
                Column::text("name", (0..60).map(|i| format!("Company {i}")).collect::<Vec<_>>()),
                Column::ints("employees", (0..60).map(|i| i * 9).collect()),
            ],
        )
        .unwrap(),
    );
    warehouse.database_mut("finance").add_table(
        Table::new(
            "industries",
            vec![Column::text(
                "company_name",
                (0..50).map(|i| format!("COMPANY {i}")).collect::<Vec<_>>(),
            )],
        )
        .unwrap(),
    );

    let connector = Arc::new(CdwConnector::with_defaults(warehouse));
    let cdw: BackendHandle = connector.clone();
    let flaky: BackendHandle = Arc::new(FaultInjector::new(cdw, FaultPlan::fail_every(3)));
    let server = RemoteBackendServer::serve(flaky, "127.0.0.1:0").expect("serve");
    println!("warehouse served at {} (every 3rd scan fails)", server.local_addr());

    // --- The "discovery side": remote + retry middleware. ---------------
    let remote: BackendHandle =
        Arc::new(RemoteBackend::connect(server.local_addr().to_string()).expect("connect"));
    let resilient: BackendHandle = Arc::new(RetryBackend::new(
        remote,
        RetryPolicy { base_delay_secs: 0.01, ..RetryPolicy::default() },
    ));

    let wg = Arc::new(WarpGate::with_backend(WarpGateConfig::default(), resilient.clone()));
    let report = wg.index_warehouse().expect("indexing survives the flaky link");
    println!(
        "indexed {} columns over the flaky link: {} scans billed, {} attempts retried, \
         {:.3}s virtual latency (CDW + backoff)",
        report.columns_indexed, report.cost.requests, report.cost.retries, report.cost.virtual_secs,
    );

    let query = ColumnRef::new("crm", "accounts", "name");
    let discovery = wg.discover(&query, 3).expect("discovery");
    println!("\ntop candidates for {query}:");
    for c in &discovery.candidates {
        println!("  {:<35} score {:.3}", c.reference.to_string(), c.score);
    }

    // --- The service loop: a daemon keeps the index fresh. ---------------
    let daemon = SyncDaemon::spawn(
        wg.clone(),
        SyncDaemonConfig::default().with_interval(Duration::from_millis(50)),
    );

    // The warehouse changes behind everyone's back…
    connector.warehouse_mut().database_mut("crm").add_table(
        Table::new(
            "leads",
            vec![Column::text(
                "company",
                (0..40).map(|i| format!("company {i}")).collect::<Vec<_>>(),
            )],
        )
        .unwrap(),
    );
    println!("\nadded crm.leads on the server; waiting for the daemon to notice…");
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        daemon.wake();
        std::thread::sleep(Duration::from_millis(20));
        if daemon.report().tables_added >= 1 || std::time::Instant::now() > deadline {
            break;
        }
    }

    let r = daemon.shutdown();
    println!(
        "daemon: {} ticks, {} syncs ok, {} failed, circuit {:?}, {} tables picked up, {} retries across syncs",
        r.ticks, r.syncs_ok, r.syncs_failed, r.circuit, r.tables_added, r.cost.retries,
    );
    let after = wg.discover(&query, 5).expect("discovery after sync");
    println!("\ncandidates after the daemon synced:");
    for c in &after.candidates {
        println!("  {:<35} score {:.3}", c.reference.to_string(), c.score);
    }
    server.shutdown();
    println!("\nclean shutdown: server joined, daemon joined.");
}
