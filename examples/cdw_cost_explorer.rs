//! Why WarpGate samples: the CDW cost story (§3.1.3, §4.4, §5.1).
//!
//! Builds the same discovery index at several sample sizes and shows what
//! each costs in bytes scanned, dollars and virtual network time — then
//! scales the argument up to a simulated customer fleet with the paper's
//! §5.1 statistics.
//!
//! ```text
//! cargo run --release --example cdw_cost_explorer
//! ```

use warpgate::corpora::{build_testbed, FleetSample, FleetSpec, TestbedSpec};
use warpgate::prelude::*;

fn main() {
    let corpus = build_testbed(&TestbedSpec::s(0.01));
    println!(
        "corpus: {} ({} tables / {} columns / {:.0} avg rows at 1% row scale)\n",
        corpus.name,
        corpus.warehouse.num_tables(),
        corpus.warehouse.num_columns(),
        corpus.warehouse.avg_rows()
    );

    println!(
        "{:<22} {:>12} {:>12} {:>14} {:>12}",
        "index sampling", "MB scanned", "cost (USD)", "virtual time", "index secs"
    );
    for (label, sample) in [
        ("full scan", SampleSpec::Full),
        ("reservoir 1000", SampleSpec::Reservoir { n: 1000, seed: 7 }),
        ("reservoir 100", SampleSpec::Reservoir { n: 100, seed: 7 }),
        ("distinct 1000", SampleSpec::DistinctReservoir { n: 1000, seed: 7 }),
        ("head 100", SampleSpec::Head(100)),
    ] {
        let connector = std::sync::Arc::new(CdwConnector::with_defaults(corpus.warehouse.clone()));
        let wg = WarpGate::with_backend(WarpGateConfig::default().with_sample(sample), connector);
        let report = wg.index_warehouse().expect("indexing");
        let costs = report.cost;
        println!(
            "{:<22} {:>12.2} {:>12.6} {:>13.2}s {:>11.2}s",
            label,
            costs.bytes_scanned as f64 / (1 << 20) as f64,
            costs.usd,
            costs.virtual_secs,
            report.elapsed_secs,
        );
    }

    // Fleet-scale extrapolation: the paper's §5.1 statistics.
    println!("\n--- fleet extrapolation (paper §5.1 shape) ---\n");
    let fleet = FleetSample::draw(&FleetSpec::paper(2_000, 7));
    println!(
        "sampled fleet of 2000 customers: median {} / mean {:.0} tables per warehouse",
        fleet.median_tables(),
        fleet.mean_tables()
    );
    println!("rows per table: median {} / mean {:.2e}", fleet.median_rows(), fleet.mean_rows());
    let pricing = CdwConfig::default();
    let active_1k = fleet.active_sampling_cost_usd(1_000, &pricing);
    let active_10 = fleet.active_sampling_cost_usd(10, &pricing);
    let full = fleet.full_scan_cost_usd(&pricing);
    println!("\nactively sampling every column fleet-wide:");
    println!("  at 1000 rows/column: ${active_1k:>14.2}");
    println!("  at   10 rows/column: ${active_10:>14.2}");
    println!("  one full fleet scan: ${full:>14.2}");
    println!(
        "\nfull scans cost {:.0}x a 1000-row sampling pass — the reason the paper\n\
         prefers passive sampling of user queries and shared samples (§5.1).",
        full / active_1k.max(f64::MIN_POSITIVE)
    );
}
