//! Federated multi-warehouse discovery, end to end: one WarpGate node
//! spanning three warehouses under named backends — a simulated CDW, a
//! CSV data lake, and a remote warehouse reached over TCP through retry
//! middleware.
//!
//! Composition:
//!
//! ```text
//!              ┌─ "cdw"  ── CdwConnector                   (crm.*)
//! WarpGate ────┼─ "lake" ── CsvBackend                     (exports.*)
//!              └─ "partners" ── RetryBackend ── RemoteBackend ──TCP──▶
//!                                           RemoteBackendServer ── CdwConnector (ops.*)
//! ```
//!
//! The demo indexes all three namespaces into one LSH index, runs
//! cross-warehouse discovery (all-scope, include-scope, exclude-scope),
//! shows per-backend cost attribution from a federated `sync()`, mutates
//! one warehouse and reconciles it alone with `sync_backend()`, and
//! finishes with a cross-warehouse lookup-join augmentation.
//!
//! ```text
//! cargo run --release --example federated_discovery
//! ```

use std::sync::Arc;

use warpgate::prelude::*;

fn main() {
    // --- Warehouse 1: the CDW (simulated Snowflake-style connector). ----
    let mut cdw_w = Warehouse::new("cdw");
    cdw_w.database_mut("crm").add_table(
        Table::new(
            "accounts",
            vec![
                Column::text("name", (0..60).map(|i| format!("Company {i}")).collect::<Vec<_>>()),
                Column::ints("employees", (0..60).map(|i| i * 9).collect()),
            ],
        )
        .unwrap(),
    );
    let cdw_conn = Arc::new(CdwConnector::with_defaults(cdw_w));

    // --- Warehouse 2: a CSV data lake on disk. --------------------------
    let mut lake_w = Warehouse::new("lake");
    lake_w.database_mut("exports").add_table(
        Table::new(
            "dump",
            vec![Column::text(
                "company_name",
                (0..50).map(|i| format!("COMPANY {i}")).collect::<Vec<_>>(),
            )],
        )
        .unwrap(),
    );
    let root = std::env::temp_dir().join(format!("wg_federated_demo_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    CsvBackend::export_warehouse(&lake_w, &root).expect("export lake to CSV");
    let lake_backend = Arc::new(CsvBackend::open(&root, CdwConfig::free()).expect("open lake"));

    // --- Warehouse 3: a partner warehouse served over TCP. --------------
    let mut partner_w = Warehouse::new("partners");
    partner_w.database_mut("ops").add_table(
        Table::new(
            "vendors",
            vec![
                Column::text(
                    "vendor",
                    (0..40).map(|i| format!("company {i} inc")).collect::<Vec<_>>(),
                ),
                Column::text(
                    "tier",
                    (0..40).map(|i| format!("Tier {}", i % 3)).collect::<Vec<_>>(),
                ),
            ],
        )
        .unwrap(),
    );
    let served: BackendHandle = Arc::new(CdwConnector::with_defaults(partner_w));
    let server = RemoteBackendServer::serve(served, "127.0.0.1:0").expect("serve partners");
    println!("partner warehouse served at {}", server.local_addr());
    let remote: BackendHandle =
        Arc::new(RemoteBackend::connect(server.local_addr().to_string()).expect("connect"));
    let resilient: BackendHandle = Arc::new(RetryBackend::with_defaults(remote));

    // --- Attach all three under names; index the federation. ------------
    let wg = WarpGate::new(WarpGateConfig::default());
    let cdw = wg.attach_named("cdw", cdw_conn.clone());
    let lake = wg.attach_named("lake", lake_backend);
    let partners = wg.attach_named("partners", resilient);
    println!(
        "attached {} backends: {:?}",
        wg.attached_backends().len(),
        wg.attached_backends().iter().map(|id| id.name()).collect::<Vec<_>>()
    );

    let report = wg.index_warehouse().expect("federated indexing");
    println!(
        "indexed {} columns across the federation ({} requests billed)\n",
        report.columns_indexed, report.cost.requests
    );

    // --- Cross-warehouse discovery. -------------------------------------
    let query = ColumnRef::scoped(cdw, "crm", "accounts", "name");
    let d = wg.discover(&query, 5).expect("all-scope discover");
    println!("discover({query}) across ALL warehouses:");
    for c in &d.candidates {
        println!("  {:.3}  {}", c.score, c.reference);
    }

    let only_lake = wg
        .discover_scoped(&query, 5, &DiscoverScope::include([lake.bits()]))
        .expect("lake-scoped discover");
    println!("\nscoped to the lake only:");
    for c in &only_lake.candidates {
        println!("  {:.3}  {}", c.score, c.reference);
    }

    let not_partners = wg
        .discover_scoped(&query, 5, &DiscoverScope::exclude([partners.bits()]))
        .expect("exclude-scoped discover");
    println!("\neverywhere but the partner warehouse:");
    for c in &not_partners.candidates {
        println!("  {:.3}  {}", c.score, c.reference);
    }

    // --- Per-backend sync attribution. ----------------------------------
    cdw_conn.warehouse_mut().database_mut("crm").add_table(
        Table::new(
            "accounts",
            vec![
                Column::text(
                    "name",
                    (0..70).map(|i| format!("Company {i} Holdings")).collect::<Vec<_>>(),
                ),
                Column::ints("employees", (0..70).map(|i| i * 9).collect()),
            ],
        )
        .unwrap(),
    );
    println!("\nmutated crm.accounts in the CDW; reconciling ONLY that backend:");
    let sync = wg.sync_backend("cdw").expect("targeted sync");
    println!(
        "  sync_backend(\"cdw\"): {} updated, {} columns re-embedded, {} requests billed",
        sync.tables_updated, sync.columns_indexed, sync.cost.requests
    );

    let full = wg.sync().expect("federated sync");
    println!("  follow-up federated sync(): noop = {}", full.is_noop());
    for (id, slice) in &full.per_backend {
        println!("    {:10}  scans={} usd={:.6}", id.name(), slice.cost.requests, slice.cost.usd);
    }

    // --- Cross-warehouse augmentation (Fig. 3 step 3). ------------------
    let base = cdw_conn.warehouse().table("crm", "accounts").expect("base table").clone();
    let candidate = ColumnRef::scoped(partners, "ops", "vendors", "vendor");
    let j = wg.joinability(&query, &candidate).expect("cross-warehouse joinability");
    println!("\njoinability({query}, {candidate}) = {j:.3}");

    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
    println!("\nbase table has {} rows; federation demo complete", base.num_rows());
}
